//! Virtual time for the simulation.
//!
//! Time is an integer count of nanoseconds since simulation start. Integer
//! time keeps event ordering exact and portable: two runs with the same seed
//! produce bit-identical schedules on any host.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Nanoseconds per millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds per microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;

/// An instant in virtual time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as `f64` (lossy above ~2^53 ns).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Elapsed duration since `earlier`. Saturates at zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add, so `SimTime::MAX + d` stays "never".
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration; used as "forever".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds. Negative and NaN inputs clamp to
    /// zero; infinities clamp to [`SimDuration::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * NANOS_PER_SEC as f64;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Construct from fractional milliseconds (clamping like
    /// [`SimDuration::from_secs_f64`]).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1_000.0)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative factor (clamping on overflow/NaN).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }

    /// Smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, t: SimTime) -> SimDuration {
        SimDuration(self.0 - t.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 - d.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, d: SimDuration) {
        self.0 -= d.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(250);
        assert_eq!(t.as_nanos(), 3_250 * NANOS_PER_MILLI);
        assert_eq!(t - SimTime::from_secs(3), SimDuration::from_millis(250));
        assert_eq!(t - SimDuration::from_millis(250), SimTime::from_secs(3));
    }

    #[test]
    fn duration_from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000_000);
    }

    #[test]
    fn duration_since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
        assert_eq!(b.duration_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10).mul_f64(0.25);
        assert_eq!(d, SimDuration::from_millis(2_500));
        assert_eq!(SimDuration::from_secs(1).mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(10)), "10ns");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }
}
