//! Seeded, splittable pseudo-randomness for the simulation.
//!
//! [`SimRng`] is a xoshiro256++ generator seeded through SplitMix64. It is
//! implemented here (rather than pulling `rand_distr`) so the exact bit
//! stream — and therefore every experiment — is pinned by this crate alone.
//!
//! `split(stream)` derives an independent generator for a subcomponent, so
//! adding RNG consumers to one part of the system does not perturb the
//! draws seen elsewhere (a classic reproducibility hazard in simulators).

/// xoshiro256++ generator with distribution helpers.
///
/// ```
/// use parfait_simcore::SimRng;
///
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
///
/// // Derived streams are independent of the parent's consumption order.
/// let mut worker = a.split(1);
/// assert!(worker.below(10) < 10);
/// assert!(worker.exp(2.0) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent generator for stream `stream`.
    ///
    /// Streams derived with distinct ids from the same parent are
    /// statistically independent; the parent is not advanced.
    pub fn split(&self, stream: u64) -> SimRng {
        let mut sm = self.s[0] ^ self.s[2] ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Returns `lo` if the range is empty.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's method. `n` must be > 0.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's unbiased multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64 requires lo <= hi");
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential with the given mean (inverse-CDF method).
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // 1 - f64() is in (0, 1], avoiding ln(0).
        -mean * (1.0 - self.f64()).ln()
    }

    /// Standard normal via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.f64(); // (0, 1]
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with mean `mu` and standard deviation `sigma >= 0`.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        assert!(sigma >= 0.0, "normal sigma must be non-negative");
        mu + sigma * self.std_normal()
    }

    /// Log-normal parameterised by the *underlying* normal's `mu`/`sigma`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto with scale `xm > 0` and shape `alpha > 0`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(xm > 0.0 && alpha > 0.0, "pareto needs xm > 0 and alpha > 0");
        xm / (1.0 - self.f64()).powf(1.0 / alpha)
    }

    /// Zipf rank in `[1, n]` with exponent `s >= 0` (inverse-CDF over the
    /// precomputable harmonic sum is avoided; rejection method by Devroye).
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n >= 1, "zipf needs n >= 1");
        if n == 1 {
            return 1;
        }
        // Simple inversion on the generalized harmonic CDF. O(log n) via
        // doubling search would need the partial sums; n is small in our
        // workloads (model catalog sizes), so linear accumulation is fine.
        let h: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let target = self.f64() * h;
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            if acc >= target {
                return k;
            }
        }
        n
    }

    /// Uniformly pick an element of a non-empty slice.
    pub fn choice<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choice of empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let root = SimRng::new(7);
        let mut s1 = root.split(1);
        let mut s1b = root.split(1);
        let mut s2 = root.split(2);
        assert_eq!(s1.next_u64(), s1b.next_u64(), "same stream id reproduces");
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = SimRng::new(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            // each bin expects 10_000; allow ±5%
            assert!((9_500..=10_500).contains(&c), "bin count {c} out of range");
        }
    }

    #[test]
    fn exp_mean_converges() {
        let mut r = SimRng::new(11);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = SimRng::new(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::new(17);
        for _ in 0..10_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn zipf_favors_small_ranks() {
        let mut r = SimRng::new(19);
        let mut ones = 0;
        let mut tens = 0;
        for _ in 0..50_000 {
            match r.zipf(10, 1.0) {
                1 => ones += 1,
                10 => tens += 1,
                _ => {}
            }
        }
        assert!(ones > 5 * tens, "ones={ones} tens={tens}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "overwhelmingly likely to move"
        );
    }

    #[test]
    fn range_u64_bounds_inclusive() {
        let mut r = SimRng::new(29);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let x = r.range_u64(3, 5);
            assert!((3..=5).contains(&x));
            saw_lo |= x == 3;
            saw_hi |= x == 5;
        }
        assert!(saw_lo && saw_hi);
    }
}
