//! Central registry of RNG stream ids.
//!
//! Every [`crate::SimRng::split`] call in the workspace must name a
//! constant from this module (enforced by `parfait-lint` rule D3, see
//! DESIGN.md). Splitting on ad-hoc integer literals is how simulators
//! silently lose reproducibility: two subsystems pick the same id, their
//! draws become correlated, and "bit-identical under the same seed" stops
//! being checkable. Centralizing the ids makes collisions a compile-time
//! review question and a tested invariant ([`ALL`] must be duplicate-free).
//!
//! The numeric values are frozen: changing one changes every trace and
//! BENCH artifact downstream. Add new streams with fresh ids; never reuse
//! or renumber outside a deliberate artifact-regeneration PR.

/// Recovery machinery: exponential-backoff retry jitter and respawn
/// scheduling in `parfait-faas::world` (historically hard-coded as 617).
pub const RETRY_JITTER: u64 = 617;

/// Realization of stochastic fault plans in `parfait-faas::faults`
/// (historically hard-coded as 618).
pub const FAULT_REALIZATION: u64 = 618;

/// Checkpoint timer jitter for the periodic snapshotting of long-running
/// task bodies in `parfait-faas::world` (de-synchronizes co-resident
/// workers so snapshot writebacks do not all land on the PCIe link in
/// the same instant).
pub const CHECKPOINT_TIMING: u64 = 640;

/// Realization of *correlated* stochastic fault schedules (host reboots,
/// rack power events) in `parfait-faas::faults`. Kept separate from
/// [`FAULT_REALIZATION`] so enabling correlated rates never perturbs the
/// draws of a previously recorded independent-fault schedule.
pub const CORRELATED_FAULTS: u64 = 641;

/// Straggler-hedging timer jitter in `parfait-faas::world`: the delay
/// before a speculative duplicate of a slow task is launched is
/// `est_service * trigger_factor * (1 + jitter * u)` with `u` drawn
/// here. De-synchronizes hedge launches the same way
/// [`CHECKPOINT_TIMING`] de-synchronizes snapshot writebacks.
pub const HEDGE_TIMING: u64 = 642;

/// Admission-control tie-breaks in `parfait-faas::world`: when the
/// shed-lowest-priority policy finds several queued tasks tied at the
/// minimum priority, the victim is drawn from this stream so the choice
/// is reproducible and uncorrelated with every other subsystem.
pub const ADMISSION: u64 = 643;

/// Base id for per-worker streams: worker `id` draws from
/// `WORKER_BASE + id`. The range `[WORKER_BASE, WORKER_BASE + 2^20)` is
/// reserved for workers; keep scalar stream ids out of it (enforced by
/// the registry test below).
pub const WORKER_BASE: u64 = 1000;

/// The molecular-design campaign's private stream (molecule features,
/// oracle noise, random selection) in `parfait-workloads::molecular`.
pub const MOLECULAR_CAMPAIGN: u64 = 77;

/// Poisson arrival traces for the open-loop serving scenarios in
/// `parfait-bench::scenarios`. Historically 4242, which sat inside the
/// per-worker reservation (collision with worker 3242); renumbered to
/// 424 alongside the deliberate artifact regeneration in PR 4.
pub const ARRIVAL_TRACE: u64 = 424;

/// Poisson arrival trace for the dynamic-batching extension experiment
/// in the `repro` binary.
pub const BATCH_ARRIVALS: u64 = 999;

/// Non-homogeneous Poisson arrivals (diurnal sinusoid × flash-crowd
/// windows, realized by thinning) for the fleet-scale open-loop driver
/// in `parfait-workloads::trace::fleet` / `parfait-bench::fleet`. Kept
/// separate from [`ARRIVAL_TRACE`] so the 1M-task fleet scenario never
/// perturbs the draws of the recorded open-loop serving artifacts.
pub const FLEET_ARRIVALS: u64 = 644;

/// Realization of injected reconfiguration failures
/// (`FaultKind::ReconfigFail` and the `reconfig_fail_prob` Bernoulli
/// draw) in `parfait-faas`. Kept separate from [`FAULT_REALIZATION`] so
/// enabling reconfig-fault injection never perturbs the draws of a
/// previously recorded worker/device fault schedule.
pub const RECONFIG_FAULTS: u64 = 645;

/// Arrival traces for the closed-loop autoscaling scenario in
/// `parfait-bench::autoscale` (two out-of-phase tenant mixes drawn
/// sequentially). Kept separate from [`FLEET_ARRIVALS`] so the autoscale
/// sweep never perturbs the recorded fleet artifact.
pub const AUTOSCALE_ARRIVALS: u64 = 646;

/// Every named stream, for the uniqueness check and for reports. Keep in
/// sync with the constants above; `parfait-lint` independently parses the
/// `pub const` declarations in this file, so a constant missing from this
/// table still participates in the duplicate-id check.
pub const ALL: &[(&str, u64)] = &[
    ("RETRY_JITTER", RETRY_JITTER),
    ("FAULT_REALIZATION", FAULT_REALIZATION),
    ("CHECKPOINT_TIMING", CHECKPOINT_TIMING),
    ("CORRELATED_FAULTS", CORRELATED_FAULTS),
    ("HEDGE_TIMING", HEDGE_TIMING),
    ("ADMISSION", ADMISSION),
    ("WORKER_BASE", WORKER_BASE),
    ("MOLECULAR_CAMPAIGN", MOLECULAR_CAMPAIGN),
    ("ARRIVAL_TRACE", ARRIVAL_TRACE),
    ("BATCH_ARRIVALS", BATCH_ARRIVALS),
    ("FLEET_ARRIVALS", FLEET_ARRIVALS),
    ("RECONFIG_FAULTS", RECONFIG_FAULTS),
    ("AUTOSCALE_ARRIVALS", AUTOSCALE_ARRIVALS),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_ids_are_unique() {
        let mut ids: Vec<u64> = ALL.iter().map(|(_, id)| *id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate RNG stream id in registry");
    }

    #[test]
    fn frozen_values() {
        // The historical literals these constants replaced (or, for
        // ARRIVAL_TRACE, the value fixed by the PR 4 regeneration);
        // renumbering them would silently change every seeded trace.
        assert_eq!(RETRY_JITTER, 617);
        assert_eq!(FAULT_REALIZATION, 618);
        assert_eq!(CHECKPOINT_TIMING, 640);
        assert_eq!(CORRELATED_FAULTS, 641);
        assert_eq!(HEDGE_TIMING, 642);
        assert_eq!(ADMISSION, 643);
        assert_eq!(WORKER_BASE, 1000);
        assert_eq!(MOLECULAR_CAMPAIGN, 77);
        assert_eq!(ARRIVAL_TRACE, 424);
        assert_eq!(BATCH_ARRIVALS, 999);
        assert_eq!(FLEET_ARRIVALS, 644);
        assert_eq!(RECONFIG_FAULTS, 645);
        assert_eq!(AUTOSCALE_ARRIVALS, 646);
    }

    #[test]
    fn scalar_ids_avoid_worker_range() {
        for (name, id) in ALL {
            if *name == "WORKER_BASE" {
                continue;
            }
            assert!(
                *id < WORKER_BASE,
                "{name}={id} lands in the per-worker stream range"
            );
        }
    }
}
