//! Named-interval recording.
//!
//! The paper's Fig. 3 is a Gantt-style plot of when *simulation*, *training*
//! and *inference* tasks were running during the molecular-design campaign,
//! with the white gaps exposing GPU idle time. [`Timeline`] records exactly
//! that: labelled spans on named tracks, with queries for busy time, union
//! coverage, utilization, and an ASCII rendering for the repro harness.

use crate::time::{SimDuration, SimTime};
use serde::Serialize;
use std::collections::BTreeMap;

/// Handle to a span opened with [`Timeline::start`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(usize);

/// One closed interval on a track.
#[derive(Debug, Clone, Serialize)]
pub struct Span {
    /// Track (category) name, e.g. `"simulation"`, `"training"`.
    pub track: String,
    /// Free-form label, e.g. a task id.
    pub label: String,
    /// Span start.
    pub start: SimTime,
    /// Span end (`>= start`).
    pub end: SimTime,
}

impl Span {
    /// Span length.
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }
}

#[derive(Debug, Clone)]
struct OpenSpan {
    track: String,
    label: String,
    start: SimTime,
}

/// Recorder of labelled spans on named tracks.
#[derive(Debug, Default, Clone)]
pub struct Timeline {
    spans: Vec<Span>,
    open: BTreeMap<usize, OpenSpan>,
    next_id: usize,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Open a span at `t`; close it later with [`Timeline::end`].
    pub fn start(&mut self, track: &str, label: &str, t: SimTime) -> SpanId {
        let id = self.next_id;
        self.next_id += 1;
        self.open.insert(
            id,
            OpenSpan {
                track: track.to_string(),
                label: label.to_string(),
                start: t,
            },
        );
        SpanId(id)
    }

    /// Close an open span at `t`. Returns `false` if the id is unknown or
    /// already closed. `t` earlier than the span start is clamped.
    pub fn end(&mut self, id: SpanId, t: SimTime) -> bool {
        match self.open.remove(&id.0) {
            Some(o) => {
                self.spans.push(Span {
                    track: o.track,
                    label: o.label,
                    start: o.start,
                    end: t.max(o.start),
                });
                true
            }
            None => false,
        }
    }

    /// Record a complete span directly.
    pub fn add(&mut self, track: &str, label: &str, start: SimTime, end: SimTime) {
        self.spans.push(Span {
            track: track.to_string(),
            label: label.to_string(),
            start,
            end: end.max(start),
        });
    }

    /// All closed spans, in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Closed spans on one track.
    pub fn track_spans<'a>(&'a self, track: &'a str) -> impl Iterator<Item = &'a Span> + 'a {
        self.spans.iter().filter(move |s| s.track == track)
    }

    /// Names of all tracks with at least one closed span (sorted, deduped).
    pub fn tracks(&self) -> Vec<String> {
        let mut ts: Vec<String> = self.spans.iter().map(|s| s.track.clone()).collect();
        ts.sort();
        ts.dedup();
        ts
    }

    /// Total busy time on a track within `[from, to]`, counting overlapping
    /// spans once (union of intervals).
    pub fn union_busy(&self, track: &str, from: SimTime, to: SimTime) -> SimDuration {
        let mut iv: Vec<(u64, u64)> = self
            .track_spans(track)
            .filter_map(|s| {
                let lo = s.start.max(from).as_nanos();
                let hi = s.end.min(to).as_nanos();
                (hi > lo).then_some((lo, hi))
            })
            .collect();
        iv.sort_unstable();
        let mut total = 0u64;
        let mut cur: Option<(u64, u64)> = None;
        for (lo, hi) in iv {
            match cur {
                Some((clo, chi)) if lo <= chi => cur = Some((clo, chi.max(hi))),
                Some((clo, chi)) => {
                    total += chi - clo;
                    cur = Some((lo, hi));
                }
                None => cur = Some((lo, hi)),
            }
        }
        if let Some((clo, chi)) = cur {
            total += chi - clo;
        }
        SimDuration::from_nanos(total)
    }

    /// Fraction of `[from, to]` covered by the track's union of spans.
    pub fn utilization(&self, track: &str, from: SimTime, to: SimTime) -> f64 {
        let window = to.duration_since(from).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        self.union_busy(track, from, to).as_secs_f64() / window
    }

    /// Sum of span durations on a track (overlaps counted multiply).
    pub fn total_busy(&self, track: &str) -> SimDuration {
        self.track_spans(track)
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration())
    }

    /// Idle gaps (in the union sense) on a track within `[from, to]`,
    /// returned as `(start, end)` pairs.
    pub fn gaps(&self, track: &str, from: SimTime, to: SimTime) -> Vec<(SimTime, SimTime)> {
        let mut iv: Vec<(u64, u64)> = self
            .track_spans(track)
            .filter_map(|s| {
                let lo = s.start.max(from).as_nanos();
                let hi = s.end.min(to).as_nanos();
                (hi > lo).then_some((lo, hi))
            })
            .collect();
        iv.sort_unstable();
        let mut gaps = Vec::new();
        let mut cursor = from.as_nanos();
        for (lo, hi) in iv {
            if lo > cursor {
                gaps.push((SimTime::from_nanos(cursor), SimTime::from_nanos(lo)));
            }
            cursor = cursor.max(hi);
        }
        if cursor < to.as_nanos() {
            gaps.push((SimTime::from_nanos(cursor), to));
        }
        gaps
    }

    /// Latest end time over all closed spans (`t = 0` when empty).
    pub fn horizon(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Render tracks as fixed-width ASCII occupancy rows ('█' busy, '·'
    /// idle), one row per track in sorted order — the textual Fig. 3.
    pub fn render_ascii(&self, width: usize) -> String {
        let end = self.horizon();
        if end == SimTime::ZERO || width == 0 {
            return String::new();
        }
        let name_w = self
            .tracks()
            .iter()
            .map(|t| t.len())
            .max()
            .unwrap_or(0)
            .max(8);
        let mut out = String::new();
        for track in self.tracks() {
            let mut row = vec!['·'; width];
            for s in self.track_spans(&track) {
                let lo =
                    (s.start.as_nanos() as u128 * width as u128 / end.as_nanos() as u128) as usize;
                let hi =
                    (s.end.as_nanos() as u128 * width as u128 / end.as_nanos() as u128) as usize;
                let hi = hi.max(lo + 1).min(width);
                for c in row.iter_mut().take(hi).skip(lo.min(width - 1)) {
                    *c = '█';
                }
            }
            out.push_str(&format!("{track:<name_w$} |"));
            out.extend(row);
            out.push_str("|\n");
        }
        out.push_str(&format!(
            "{:<name_w$} 0s{:>pad$}",
            "",
            format!("{:.1}s", end.as_secs_f64()),
            pad = width
        ));
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    #[test]
    fn start_end_records_span() {
        let mut tl = Timeline::new();
        let id = tl.start("gpu", "task-1", s(1));
        assert!(tl.end(id, s(4)));
        assert!(!tl.end(id, s(5)), "double close rejected");
        assert_eq!(tl.spans().len(), 1);
        assert_eq!(tl.spans()[0].duration(), SimDuration::from_secs(3));
    }

    #[test]
    fn end_clamps_backwards_time() {
        let mut tl = Timeline::new();
        let id = tl.start("t", "x", s(5));
        tl.end(id, s(3));
        assert_eq!(tl.spans()[0].duration(), SimDuration::ZERO);
    }

    #[test]
    fn union_busy_merges_overlaps() {
        let mut tl = Timeline::new();
        tl.add("cpu", "a", s(0), s(10));
        tl.add("cpu", "b", s(5), s(15));
        tl.add("cpu", "c", s(20), s(25));
        assert_eq!(
            tl.union_busy("cpu", s(0), s(30)),
            SimDuration::from_secs(20)
        );
        assert_eq!(tl.total_busy("cpu"), SimDuration::from_secs(25));
    }

    #[test]
    fn utilization_fraction() {
        let mut tl = Timeline::new();
        tl.add("gpu", "k", s(0), s(5));
        let u = tl.utilization("gpu", s(0), s(10));
        assert!((u - 0.5).abs() < 1e-12);
        assert_eq!(tl.utilization("gpu", s(3), s(3)), 0.0);
    }

    #[test]
    fn gaps_found_between_spans() {
        let mut tl = Timeline::new();
        tl.add("gpu", "a", s(1), s(3));
        tl.add("gpu", "b", s(6), s(8));
        let gaps = tl.gaps("gpu", s(0), s(10));
        assert_eq!(gaps, vec![(s(0), s(1)), (s(3), s(6)), (s(8), s(10))]);
    }

    #[test]
    fn tracks_sorted_unique() {
        let mut tl = Timeline::new();
        tl.add("train", "1", s(0), s(1));
        tl.add("infer", "2", s(0), s(1));
        tl.add("train", "3", s(2), s(3));
        assert_eq!(tl.tracks(), vec!["infer".to_string(), "train".to_string()]);
    }

    #[test]
    fn ascii_render_shape() {
        let mut tl = Timeline::new();
        tl.add("sim", "a", s(0), s(5));
        tl.add("train", "b", s(5), s(10));
        let art = tl.render_ascii(20);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3); // two tracks + axis
        assert!(lines[0].contains('█'));
        assert!(lines[0].contains('·'));
    }

    #[test]
    fn horizon_tracks_latest_end() {
        let mut tl = Timeline::new();
        assert_eq!(tl.horizon(), SimTime::ZERO);
        tl.add("t", "a", s(2), s(9));
        tl.add("t", "b", s(1), s(4));
        assert_eq!(tl.horizon(), s(9));
    }
}
