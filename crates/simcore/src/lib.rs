#![warn(missing_docs)]

//! # parfait-simcore
//!
//! Deterministic discrete-event simulation (DES) substrate for the PARFAIT
//! reproduction of *"Fine-grained accelerator partitioning for Machine
//! Learning and Scientific Computing in Function as a Service Platform"*
//! (Dhakal et al., SC-W 2023).
//!
//! Everything in the reproduction — the GPU model, the Parsl-workalike FaaS
//! runtime, the workloads — runs on top of this engine so that every
//! experiment is a pure function of its configuration and RNG seed.
//!
//! The engine is deliberately single-threaded: reproducing the paper's
//! *numbers* requires that event ordering never depends on host-machine
//! scheduling. Parallelism in the benchmark harness happens *across*
//! independent simulations, not inside one.
//!
//! ## Architecture
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond virtual time.
//! * [`Engine`] — a time-ordered event heap generic over a user "world"
//!   type `W`. Events are `FnOnce(&mut W, &mut Engine<W>)` closures, so any
//!   crate can drive any state it can reach from `W` without the engine
//!   knowing about it.
//! * [`rng::SimRng`] — splittable xoshiro256++ PRNG plus the distributions
//!   the workloads need (exponential, normal, lognormal, Pareto, Zipf).
//! * [`streams`] — the central registry of RNG stream ids; every
//!   `SimRng::split` site must name one of its constants (lint rule D3).
//! * [`resource`] — FIFO and processor-sharing resources for modelling CPU
//!   pools and queues.
//! * [`stats`] — streaming statistics, histograms and time-weighted gauges.
//! * [`timeline`] — named-interval recorder behind the paper's Fig. 3.

pub mod engine;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod streams;
pub mod time;
pub mod timeline;

pub use engine::{Engine, EventId};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
