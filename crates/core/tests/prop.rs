//! Property-based tests for the partitioning layer.

use parfait_core::accel::format_accelerators;
use parfait_core::rightsize;
use parfait_core::{apply_plan, equal_mig_profile, parse_accelerators, plan, Strategy};
use parfait_faas::AcceleratorSpec;
use parfait_gpu::host::GpuFleet;
use parfait_gpu::GpuSpec;
use proptest::prelude::*;

proptest! {
    /// Any list of valid GPU indices with valid percentages parses into
    /// the same number of specs, preserving order and values.
    #[test]
    fn accelerator_parse_preserves_order(
        gpus in proptest::collection::vec(0u32..8, 1..10),
        pcts in proptest::collection::vec(1u32..=50, 10),
    ) {
        let entries: Vec<String> = gpus.iter().map(|g| g.to_string()).collect();
        let entry_refs: Vec<&str> = entries.iter().map(|s| s.as_str()).collect();
        let pcts = &pcts[..gpus.len()];
        let specs = parse_accelerators(&entry_refs, Some(pcts)).unwrap();
        prop_assert_eq!(specs.len(), gpus.len());
        for ((spec, g), p) in specs.iter().zip(&gpus).zip(pcts) {
            prop_assert_eq!(spec, &AcceleratorSpec::GpuPercentage(*g, *p));
        }
    }

    /// format ∘ parse is the identity on valid percentage lists.
    #[test]
    fn accelerator_format_parse_roundtrip(
        gpus in proptest::collection::vec(0u32..8, 1..8),
        pcts in proptest::collection::vec(1u32..=25, 8),
    ) {
        let entries: Vec<String> = gpus.iter().map(|g| g.to_string()).collect();
        let refs: Vec<&str> = entries.iter().map(|s| s.as_str()).collect();
        let specs = parse_accelerators(&refs, Some(&pcts[..gpus.len()])).unwrap();
        let (e2, p2) = format_accelerators(&specs);
        let refs2: Vec<&str> = e2.iter().map(|s| s.as_str()).collect();
        let reparsed = parse_accelerators(&refs2, p2.as_deref()).unwrap();
        prop_assert_eq!(reparsed, specs);
    }

    /// Equal-split plans always apply cleanly to an idle device, and the
    /// resulting spec count equals the worker count, for every strategy
    /// and every feasible k.
    #[test]
    fn plans_always_apply(k in 1usize..8, strat_sel in 0usize..5) {
        let strategy = match strat_sel {
            0 => Strategy::TimeSharing,
            1 => Strategy::MpsDefault,
            2 => Strategy::MpsEqual,
            3 => Strategy::MigEqual,
            _ => Strategy::Vgpu,
        };
        let spec = GpuSpec::a100_80gb();
        let mut fleet = GpuFleet::new();
        let g = fleet.add(spec.clone());
        let p = plan(&spec, 0, k, &strategy).unwrap();
        let specs = apply_plan(&mut fleet, &p).unwrap();
        prop_assert_eq!(specs.len(), k);
        if matches!(strategy, Strategy::MigEqual) {
            prop_assert_eq!(fleet.device(g).mig.instance_count(), k);
        }
        if matches!(strategy, Strategy::MpsEqual) {
            // Equal percentages never oversubscribe.
            let total: u32 = specs
                .iter()
                .map(|s| match s {
                    AcceleratorSpec::GpuPercentage(_, p) => *p,
                    _ => 0,
                })
                .sum();
            prop_assert!(total <= 100);
        }
    }

    /// The equal MIG profile for k always fits k instances within 7
    /// compute and 8 memory slices.
    #[test]
    fn equal_mig_profile_feasible(k in 1usize..8) {
        let spec = GpuSpec::a100_80gb();
        let name = equal_mig_profile(&spec, k).unwrap();
        let catalog = parfait_gpu::mig::profile_catalog(&spec);
        let p = catalog.iter().find(|p| p.name == name).unwrap();
        prop_assert!(p.compute_slices as usize * k <= 7);
        prop_assert!(p.memory_slices as usize * k <= 8);
    }

    /// Knee detection: for any decreasing-then-flat profile, the knee is
    /// within the flat region's tolerance band and never below the first
    /// point satisfying it.
    #[test]
    fn knee_is_minimal_satisfying_point(
        flat_from in 5u32..80,
        tol in 0.01f64..0.5,
    ) {
        let pts = rightsize::profile(
            |s| {
                if s < flat_from as f64 {
                    100.0 / s
                } else {
                    100.0 / flat_from as f64
                }
            },
            (1..=108).map(|s| s as f64),
        );
        let k = rightsize::knee(&pts, tol).unwrap();
        let best = 100.0 / flat_from as f64;
        let limit = best * (1.0 + tol);
        // The knee satisfies the tolerance...
        prop_assert!(100.0 / k.min(flat_from as f64) <= limit + 1e-9);
        // ...and the point just below it does not (when it exists).
        if k > 1.5 {
            let prev = k - 1.0;
            let lat_prev = if prev < flat_from as f64 { 100.0 / prev } else { best };
            prop_assert!(lat_prev > limit - 1e-9, "knee {k} not minimal");
        }
    }
}
