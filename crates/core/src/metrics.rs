//! Experiment metrics over a finished platform run.
//!
//! Small, figure-oriented reductions of the DFK task table: makespan
//! (Fig. 4's "task completion time"), mean/percentile per-request latency
//! (Fig. 5), throughput (the abstract's 2.5× claim), and utilization
//! summaries (Table 1 quantified).

use parfait_faas::{FaasWorld, TaskState};
use parfait_simcore::stats::OnlineStats;
use parfait_simcore::{SimDuration, SimTime};
use serde::Serialize;

/// Makespan of all successfully finished tasks of one app (first submit →
/// last finish). `None` when nothing finished.
pub fn makespan(world: &FaasWorld, app: &str) -> Option<SimDuration> {
    let done = world
        .dfk
        .tasks()
        .iter()
        .filter(|t| t.app == app && t.state == TaskState::Done);
    let mut first: Option<SimTime> = None;
    let mut last: Option<SimTime> = None;
    for t in done {
        first = Some(first.map_or(t.submitted, |f| f.min(t.submitted)));
        let fin = t.finished.expect("done tasks have finish times");
        last = Some(last.map_or(fin, |l| l.max(fin)));
    }
    Some(last?.duration_since(first?))
}

/// Execution-latency statistics (start → finish, excluding queueing and
/// model load) of one app's successful tasks.
pub fn exec_latency(world: &FaasWorld, app: &str) -> OnlineStats {
    let mut s = OnlineStats::new();
    for t in world.dfk.tasks() {
        if t.app == app && t.state == TaskState::Done {
            if let (Some(st), Some(fin)) = (t.started, t.finished) {
                s.record(fin.duration_since(st).as_secs_f64());
            }
        }
    }
    s
}

/// Turnaround statistics (submit → finish) of one app's successful tasks.
pub fn turnaround(world: &FaasWorld, app: &str) -> OnlineStats {
    let mut s = OnlineStats::new();
    for t in world.dfk.tasks() {
        if t.app == app && t.state == TaskState::Done {
            if let Some(fin) = t.finished {
                s.record(fin.duration_since(t.submitted).as_secs_f64());
            }
        }
    }
    s
}

/// Completed tasks per second of one app over its makespan.
pub fn throughput(world: &FaasWorld, app: &str) -> f64 {
    let n = world
        .dfk
        .tasks()
        .iter()
        .filter(|t| t.app == app && t.state == TaskState::Done)
        .count();
    match makespan(world, app) {
        Some(m) if m.as_secs_f64() > 0.0 => n as f64 / m.as_secs_f64(),
        _ => 0.0,
    }
}

/// One row of the quantified Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct ModeSummary {
    /// Sharing-mode name.
    pub mode: String,
    /// Makespan in seconds.
    pub makespan_s: f64,
    /// Mean per-request execution latency.
    pub mean_latency_s: f64,
    /// Requests per second.
    pub throughput: f64,
    /// Mean sampled GPU utilization in `[0,1]`.
    pub mean_utilization: f64,
}

/// Summarize a finished run for one app on one GPU.
pub fn summarize(world: &FaasWorld, app: &str, gpu: u32, mode: &str) -> ModeSummary {
    ModeSummary {
        mode: mode.to_string(),
        makespan_s: makespan(world, app).map(|d| d.as_secs_f64()).unwrap_or(0.0),
        mean_latency_s: exec_latency(world, app).mean(),
        throughput: throughput(world, app),
        mean_utilization: world.monitor.mean_utilization(gpu),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfait_faas::app::bodies::CpuBurn;
    use parfait_faas::{boot, submit, AppCall, Config, ExecutorConfig};
    use parfait_gpu::host::GpuFleet;
    use parfait_simcore::{Engine, SimDuration};

    fn run_two_apps() -> FaasWorld {
        let config = Config::new(vec![ExecutorConfig::cpu("cpu", 2)]);
        let mut w = FaasWorld::new(config, GpuFleet::new(), 3);
        let mut eng = Engine::new();
        boot(&mut w, &mut eng);
        for secs in [2u64, 4] {
            submit(
                &mut w,
                &mut eng,
                AppCall::new("alpha", "cpu", move |_| {
                    Box::new(CpuBurn::new(SimDuration::from_secs(secs)))
                }),
            );
        }
        submit(
            &mut w,
            &mut eng,
            AppCall::new("beta", "cpu", |_| {
                Box::new(CpuBurn::new(SimDuration::from_secs(1)))
            }),
        );
        eng.run(&mut w);
        w
    }

    #[test]
    fn per_app_metrics_are_isolated() {
        let w = run_two_apps();
        let alpha = exec_latency(&w, "alpha");
        assert_eq!(alpha.count(), 2);
        assert!((alpha.mean() - 3.0).abs() < 0.01, "mean {}", alpha.mean());
        let beta = exec_latency(&w, "beta");
        assert_eq!(beta.count(), 1);
        assert!((beta.mean() - 1.0).abs() < 0.01);
        assert!(exec_latency(&w, "gamma").count() == 0);
    }

    #[test]
    fn makespan_and_throughput() {
        let w = run_two_apps();
        let m = makespan(&w, "alpha").unwrap().as_secs_f64();
        // Both submitted at t=0 on 2 workers: makespan ≈ slowest exec +
        // startup; certainly ≥ 4 s and < 10 s.
        assert!((4.0..10.0).contains(&m), "makespan {m}");
        let thr = throughput(&w, "alpha");
        assert!((thr - 2.0 / m).abs() < 1e-9);
        assert_eq!(makespan(&w, "gamma"), None);
        assert_eq!(throughput(&w, "gamma"), 0.0);
    }

    #[test]
    fn turnaround_includes_queueing_and_startup() {
        let w = run_two_apps();
        let turn = turnaround(&w, "alpha");
        let exec = exec_latency(&w, "alpha");
        assert!(turn.mean() > exec.mean(), "turnaround must include waiting");
    }

    #[test]
    fn summarize_shape() {
        let w = run_two_apps();
        let s = summarize(&w, "alpha", 0, "test-mode");
        assert_eq!(s.mode, "test-mode");
        assert!(s.makespan_s > 0.0);
        assert!(s.throughput > 0.0);
        assert_eq!(s.mean_utilization, 0.0, "no GPU in this platform");
    }
}
