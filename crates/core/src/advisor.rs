//! Strategy selection — Table 1's "no one-size-fits-all" discussion as a
//! decision procedure.
//!
//! §2.3: "there is no one-size-fits-all solution for GPU multiplexing;
//! the final choice will ultimately depend on application and user
//! requirements." The paper then navigates the trade-offs informally
//! (§5/§6): MPS for fine-grained shares and fast-ish resizes, MIG when
//! tenants need memory/fault isolation, time-sharing only when nothing
//! else is available. [`recommend_strategy`] encodes that navigation so
//! an operator can ask for a plan from workload facts.

use crate::planner::{equal_mig_profile, Strategy};
use crate::reconfig::{estimate_mig_reconfig_cost, estimate_mps_resize_cost};
use parfait_gpu::context::ColdStartModel;
use parfait_gpu::mig::profile_catalog;
use parfait_gpu::GpuSpec;
use serde::Serialize;

/// What the operator knows about the tenancy.
#[derive(Debug, Clone, Serialize)]
pub struct TenancyRequirements {
    /// Co-resident function processes on the GPU.
    pub tenants: usize,
    /// Do tenants belong to mutually untrusted users (⇒ memory/fault
    /// isolation required — Table 1's MIG/vGPU column)?
    pub require_isolation: bool,
    /// SMs one tenant needs to stay within its latency target (e.g. from
    /// [`crate::rightsize::recommend`]).
    pub sms_needed: u32,
    /// Resident bytes per tenant (weights + KV + workspace).
    pub footprint_bytes: u64,
    /// How often partitions must be resized (Hz). Frequent resizing
    /// penalizes MIG (GPU reset, §6) and favours MPS (+ weight cache).
    pub resize_rate_hz: f64,
    /// Are all tenants identical (homogeneous shares acceptable)?
    pub homogeneous: bool,
}

/// A recommendation with its rationale.
#[derive(Debug, Clone, Serialize)]
pub struct StrategyAdvice {
    /// The chosen strategy.
    pub strategy: Strategy,
    /// Human-readable reasons, in decision order.
    pub rationale: Vec<String>,
    /// Hard blockers found (empty when the strategy fully satisfies the
    /// requirements).
    pub caveats: Vec<String>,
}

/// Pick a multiplexing strategy for `spec` under `req`.
pub fn recommend_strategy(spec: &GpuSpec, req: &TenancyRequirements) -> StrategyAdvice {
    let mut rationale = Vec::new();
    let mut caveats = Vec::new();

    if req.tenants <= 1 {
        rationale.push("single tenant: no multiplexing needed".into());
        return StrategyAdvice {
            strategy: Strategy::TimeSharing,
            rationale,
            caveats,
        };
    }

    // Memory feasibility on the whole device (shared modes).
    let fits_shared = req.footprint_bytes.saturating_mul(req.tenants as u64) <= spec.memory_bytes;
    if !fits_shared {
        caveats.push(format!(
            "{} tenants × {} B exceed device memory; shared modes would OOM",
            req.tenants, req.footprint_bytes
        ));
    }

    if req.require_isolation {
        rationale.push("isolation required: only MIG/vGPU qualify (Table 1)".into());
        // MIG if the part supports it and an equal profile satisfies both
        // the SM need and per-instance memory.
        if spec.mig_capable {
            if let Ok(profile) = equal_mig_profile(spec, req.tenants) {
                let p = profile_catalog(spec)
                    .into_iter()
                    .find(|p| p.name == profile)
                    .expect("profile from catalog");
                let sms = p.compute_slices as u32 * spec.mig_slice_sms;
                let mem = spec.memory_bytes / 8 * p.memory_slices as u64;
                if sms >= req.sms_needed && mem >= req.footprint_bytes {
                    rationale.push(format!(
                        "MIG {profile} gives {sms} SMs / {mem} B per tenant — enough"
                    ));
                    if req.resize_rate_hz > 0.01 {
                        let cost = estimate_mig_reconfig_cost(
                            spec,
                            &ColdStartModel::default(),
                            req.footprint_bytes,
                        );
                        caveats.push(format!(
                            "frequent resizing: each MIG change resets the GPU and restarts all tenants \
                             (§6; ≈{:.1}s outage, {:.0}s/hour at this rate)",
                            cost.as_secs_f64(),
                            cost.as_secs_f64() * req.resize_rate_hz * 3600.0
                        ));
                    }
                    return StrategyAdvice {
                        strategy: Strategy::MigEqual,
                        rationale,
                        caveats,
                    };
                }
                rationale.push(format!(
                    "MIG {profile} too small ({sms} SMs / {mem} B per tenant)"
                ));
            } else {
                rationale.push(format!("no MIG profile supports {} tenants", req.tenants));
            }
        } else {
            rationale.push(format!("{} is not MIG-capable", spec.name));
        }
        if req.homogeneous {
            rationale.push("falling back to vGPU: homogeneous isolated slots".into());
            return StrategyAdvice {
                strategy: Strategy::Vgpu,
                rationale,
                caveats,
            };
        }
        caveats.push("no isolating mode satisfies the requirements; MPS is the closest fit".into());
    }

    // No isolation requirement (or nothing isolating fits): MPS with
    // right-sized percentages when the need is known, equal otherwise.
    let pct_needed = ((req.sms_needed as f64 / spec.sms as f64) * 100.0).ceil() as u32;
    let equal_pct = (100 / req.tenants as u32).max(1);
    if pct_needed > equal_pct {
        caveats.push(format!(
            "each tenant wants {pct_needed}% but an equal split gives {equal_pct}%: expect the Fig. 2 latency penalty"
        ));
    }
    if req.resize_rate_hz > 0.01 {
        let cold = ColdStartModel::default();
        let stock = estimate_mps_resize_cost(spec, &cold, req.footprint_bytes, false);
        let cached = estimate_mps_resize_cost(spec, &cold, req.footprint_bytes, true);
        rationale.push(format!(
            "frequent resizing favours MPS: restart one process, not the GPU \
             (≈{:.1}s per resize, {:.1}s with the §7 weight cache)",
            stock.as_secs_f64(),
            cached.as_secs_f64()
        ));
    }
    rationale.push(format!(
        "MPS equal split: {} × {equal_pct}% (finer-grained than MIG's 1/7 steps, §5.2)",
        req.tenants
    ));
    StrategyAdvice {
        strategy: Strategy::MpsEqual,
        rationale,
        caveats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfait_gpu::GIB;

    fn req() -> TenancyRequirements {
        TenancyRequirements {
            tenants: 4,
            require_isolation: false,
            sms_needed: 20,
            footprint_bytes: 16 * GIB,
            resize_rate_hz: 0.0,
            homogeneous: true,
        }
    }

    #[test]
    fn paper_scenario_picks_mps() {
        // §5.2's setup: 4 identical LLaMa2 tenants, no isolation mandate.
        let a = recommend_strategy(&GpuSpec::a100_80gb(), &req());
        assert_eq!(a.strategy, Strategy::MpsEqual);
        assert!(a.caveats.is_empty(), "caveats: {:?}", a.caveats);
    }

    #[test]
    fn isolation_with_adequate_slices_picks_mig() {
        let mut r = req();
        r.require_isolation = true;
        r.tenants = 2;
        r.sms_needed = 20;
        r.footprint_bytes = 30 * GIB; // fits 3g.40gb
        let a = recommend_strategy(&GpuSpec::a100_80gb(), &r);
        assert_eq!(a.strategy, Strategy::MigEqual);
    }

    #[test]
    fn isolation_with_oversized_footprint_falls_back_to_vgpu() {
        let mut r = req();
        r.require_isolation = true;
        r.tenants = 4; // 1g.10gb instances
        r.footprint_bytes = 16 * GIB; // > 10 GiB slice
        let a = recommend_strategy(&GpuSpec::a100_80gb(), &r);
        assert_eq!(a.strategy, Strategy::Vgpu);
        assert!(a.rationale.iter().any(|s| s.contains("too small")));
    }

    #[test]
    fn isolation_on_amd_part_cannot_use_mig() {
        let mut r = req();
        r.require_isolation = true;
        r.footprint_bytes = 8 * GIB;
        let a = recommend_strategy(&GpuSpec::mi210(), &r);
        assert!(a.rationale.iter().any(|s| s.contains("not MIG-capable")));
        assert_eq!(a.strategy, Strategy::Vgpu);
    }

    #[test]
    fn frequent_resizing_flags_mig_and_prefers_mps() {
        let mut r = req();
        r.resize_rate_hz = 0.1;
        let a = recommend_strategy(&GpuSpec::a100_80gb(), &r);
        assert_eq!(a.strategy, Strategy::MpsEqual);
        assert!(a.rationale.iter().any(|s| s.contains("weight cache")));

        r.require_isolation = true;
        r.tenants = 2;
        r.footprint_bytes = 30 * GIB;
        let a = recommend_strategy(&GpuSpec::a100_80gb(), &r);
        assert_eq!(a.strategy, Strategy::MigEqual);
        assert!(a.caveats.iter().any(|s| s.contains("resets the GPU")));
    }

    #[test]
    fn single_tenant_needs_nothing() {
        let mut r = req();
        r.tenants = 1;
        let a = recommend_strategy(&GpuSpec::a100_80gb(), &r);
        assert_eq!(a.strategy, Strategy::TimeSharing);
    }

    #[test]
    fn undersized_equal_split_is_flagged() {
        let mut r = req();
        r.tenants = 8;
        r.sms_needed = 40; // wants 38% but equal split is 12%
        r.footprint_bytes = 4 * GIB;
        let a = recommend_strategy(&GpuSpec::a100_80gb(), &r);
        assert_eq!(a.strategy, Strategy::MpsEqual);
        assert!(a.caveats.iter().any(|s| s.contains("latency penalty")));
    }

    #[test]
    fn shared_memory_overflow_flagged() {
        let mut r = req();
        r.tenants = 6; // 6 × 16 GiB = 96 GiB > 80
        let a = recommend_strategy(&GpuSpec::a100_80gb(), &r);
        assert!(a.caveats.iter().any(|s| s.contains("OOM")));
    }
}
