//! Partition-plan synthesis and application — §5.2's experimental setups
//! as a library.
//!
//! Given "multiplex GPU `g` across `k` function workers", the planner
//! produces the mode + per-worker accelerator specs the paper uses:
//!
//! * **time-sharing** — `k` bare bindings (the NVIDIA default);
//! * **MPS equal** — `k` entries of `⌊100/k⌋ %` (the paper's 50/50,
//!   33/33/33, 25×4);
//! * **MPS weighted** — caller-provided percentages (Listing 2's
//!   50/25/30);
//! * **MIG equal** — the largest profile allowing `k` instances: 7g for
//!   one, 3g each for two, 2g each for three, 1g each for 4–7 (§5.2);
//! * **vGPU** — `k` homogeneous slots.
//!
//! [`apply_plan`] pushes the plan into the device (mode switch, MPS
//! daemon, MIG instance creation) and returns the resolved specs for the
//! executor config.

use parfait_faas::AcceleratorSpec;
use parfait_gpu::host::GpuFleet;
use parfait_gpu::mig::profile_catalog;
use parfait_gpu::{DeviceMode, GpuError, GpuId, GpuSpec};
use serde::Serialize;

/// Sharing strategy for one GPU.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Strategy {
    /// Default time-sharing (no spatial partitioning).
    TimeSharing,
    /// Default MPS (co-scheduling, no caps).
    MpsDefault,
    /// MPS with equal percentages.
    MpsEqual,
    /// MPS with explicit percentages (one per worker).
    MpsWeighted(Vec<u32>),
    /// MIG with equal instances.
    MigEqual,
    /// vGPU with equal slots.
    Vgpu,
}

/// A synthesized plan for one GPU.
#[derive(Debug, Clone, Serialize)]
pub struct PartitionPlan {
    /// Target GPU fleet index.
    pub gpu: u32,
    /// Device mode the plan requires.
    pub mode: DeviceMode,
    /// Worker bindings *before* MIG resolution (MIG entries carry the
    /// profile name; [`apply_plan`] substitutes real UUIDs).
    pub workers: Vec<PlannedWorker>,
}

/// One worker slot of a plan.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum PlannedWorker {
    /// Bare binding.
    Bare,
    /// MPS percentage.
    Percentage(u32),
    /// MIG instance of this profile (created at apply time).
    MigProfile(&'static str),
    /// vGPU slot index.
    VgpuSlot(u32),
}

/// Planning errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// `k` must be ≥ 1.
    NoWorkers,
    /// MIG cannot host this many equal instances (max 7).
    TooManyMigInstances(usize),
    /// Weighted percentages list length ≠ worker count.
    WeightLengthMismatch,
    /// Percentage outside 1..=100.
    BadPercentage(u32),
    /// Device rejected the plan.
    Device(GpuError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoWorkers => write!(f, "plan needs at least one worker"),
            PlanError::TooManyMigInstances(k) => {
                write!(f, "MIG supports at most 7 equal instances, asked for {k}")
            }
            PlanError::WeightLengthMismatch => {
                write!(f, "weighted percentages must match worker count")
            }
            PlanError::BadPercentage(p) => write!(f, "percentage {p} outside 1..=100"),
            PlanError::Device(e) => write!(f, "device rejected plan: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<GpuError> for PlanError {
    fn from(e: GpuError) -> Self {
        PlanError::Device(e)
    }
}

/// The MIG profile giving `k` equal instances on `spec` (§5.2's mapping).
pub fn equal_mig_profile(spec: &GpuSpec, k: usize) -> Result<&'static str, PlanError> {
    if k == 0 {
        return Err(PlanError::NoWorkers);
    }
    if k > 7 {
        return Err(PlanError::TooManyMigInstances(k));
    }
    let slices = (7 / k) as u8;
    profile_catalog(spec)
        .into_iter()
        .filter(|p| p.compute_slices <= slices)
        // Memory-slice feasibility: k instances must fit 8 memory slices.
        .filter(|p| p.memory_slices as usize * k <= 8)
        .max_by_key(|p| p.compute_slices)
        .map(|p| p.name)
        .ok_or(PlanError::TooManyMigInstances(k))
}

/// Synthesize a plan for `k` workers on GPU `gpu`.
///
/// ```
/// use parfait_core::{plan, apply_plan, Strategy};
/// use parfait_faas::AcceleratorSpec;
/// use parfait_gpu::{host::GpuFleet, GpuSpec};
///
/// // The paper's §5.2 four-way split: 25% of the SMs per chatbot.
/// let spec = GpuSpec::a100_80gb();
/// let mut fleet = GpuFleet::new();
/// fleet.add(spec.clone());
/// let p = plan(&spec, 0, 4, &Strategy::MpsEqual).unwrap();
/// let specs = apply_plan(&mut fleet, &p).unwrap();
/// assert_eq!(specs, vec![AcceleratorSpec::GpuPercentage(0, 25); 4]);
/// ```
pub fn plan(
    spec: &GpuSpec,
    gpu: u32,
    k: usize,
    strategy: &Strategy,
) -> Result<PartitionPlan, PlanError> {
    if k == 0 {
        return Err(PlanError::NoWorkers);
    }
    let (mode, workers) = match strategy {
        Strategy::TimeSharing => (DeviceMode::TimeSharing, vec![PlannedWorker::Bare; k]),
        Strategy::MpsDefault => (DeviceMode::MpsDefault, vec![PlannedWorker::Bare; k]),
        Strategy::MpsEqual => {
            let pct = (100 / k as u32).max(1);
            (
                DeviceMode::MpsPartitioned,
                vec![PlannedWorker::Percentage(pct); k],
            )
        }
        Strategy::MpsWeighted(ws) => {
            if ws.len() != k {
                return Err(PlanError::WeightLengthMismatch);
            }
            for &p in ws {
                if !(1..=100).contains(&p) {
                    return Err(PlanError::BadPercentage(p));
                }
            }
            (
                DeviceMode::MpsPartitioned,
                ws.iter().map(|&p| PlannedWorker::Percentage(p)).collect(),
            )
        }
        Strategy::MigEqual => {
            let profile = equal_mig_profile(spec, k)?;
            (DeviceMode::Mig, vec![PlannedWorker::MigProfile(profile); k])
        }
        Strategy::Vgpu => (
            DeviceMode::Vgpu { slots: k as u32 },
            (0..k as u32).map(PlannedWorker::VgpuSlot).collect(),
        ),
    };
    Ok(PartitionPlan { gpu, mode, workers })
}

/// Apply a plan to the fleet: set the device mode, start the MPS daemon
/// where needed, create MIG instances, and return the per-worker
/// [`AcceleratorSpec`]s for the executor configuration.
///
/// The device must be idle (no contexts); reconfiguring a live GPU goes
/// through [`crate::reconfig`].
pub fn apply_plan(
    fleet: &mut GpuFleet,
    plan: &PartitionPlan,
) -> Result<Vec<AcceleratorSpec>, PlanError> {
    let dev = fleet.device_mut(GpuId(plan.gpu));
    if matches!(
        plan.mode,
        DeviceMode::MpsDefault | DeviceMode::MpsPartitioned
    ) {
        dev.mps.start();
    }
    dev.set_mode(plan.mode)?;
    let mut specs = Vec::with_capacity(plan.workers.len());
    for w in &plan.workers {
        let spec = match w {
            PlannedWorker::Bare => AcceleratorSpec::Gpu(plan.gpu),
            PlannedWorker::Percentage(p) => AcceleratorSpec::GpuPercentage(plan.gpu, *p),
            PlannedWorker::MigProfile(profile) => {
                let iid = dev.mig_create(profile)?;
                let uuid = dev.mig.get(iid).expect("just created").uuid.clone();
                AcceleratorSpec::Mig(uuid)
            }
            PlannedWorker::VgpuSlot(s) => AcceleratorSpec::VgpuSlot(plan.gpu, *s),
        };
        specs.push(spec);
    }
    Ok(specs)
}

/// Plan `workers` across several GPUs (the Listing-2 situation: one
/// executor spanning GPUs 1, 2 and 4). Workers are spread as evenly as
/// possible; each GPU gets its own equal-share plan for its local worker
/// count. Returns one plan per GPU, in `gpus` order, skipping GPUs that
/// received zero workers.
pub fn plan_fleet(
    spec: &GpuSpec,
    gpus: &[u32],
    workers: usize,
    strategy: &Strategy,
) -> Result<Vec<PartitionPlan>, PlanError> {
    if workers == 0 {
        return Err(PlanError::NoWorkers);
    }
    assert!(!gpus.is_empty(), "plan_fleet needs at least one GPU");
    let base = workers / gpus.len();
    let extra = workers % gpus.len();
    let mut plans = Vec::new();
    for (i, &g) in gpus.iter().enumerate() {
        let k = base + usize::from(i < extra);
        if k == 0 {
            continue;
        }
        plans.push(plan(spec, g, k, strategy)?);
    }
    Ok(plans)
}

/// Apply a fleet of plans, concatenating the per-worker specs in plan
/// order (the executor cycles through them).
pub fn apply_fleet(
    fleet: &mut GpuFleet,
    plans: &[PartitionPlan],
) -> Result<Vec<AcceleratorSpec>, PlanError> {
    let mut specs = Vec::new();
    for p in plans {
        specs.extend(apply_plan(fleet, p)?);
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GpuSpec {
        GpuSpec::a100_80gb()
    }

    #[test]
    fn paper_mig_mapping() {
        // §5.2: 2 → 3/7 each, 3 → 2/7 each, 4 → 1/7 each.
        let s = spec();
        assert_eq!(equal_mig_profile(&s, 1).unwrap(), "7g.80gb");
        assert_eq!(equal_mig_profile(&s, 2).unwrap(), "3g.40gb");
        assert_eq!(equal_mig_profile(&s, 3).unwrap(), "2g.20gb");
        assert_eq!(equal_mig_profile(&s, 4).unwrap(), "1g.10gb");
        assert_eq!(equal_mig_profile(&s, 7).unwrap(), "1g.10gb");
        assert!(matches!(
            equal_mig_profile(&s, 8),
            Err(PlanError::TooManyMigInstances(8))
        ));
    }

    #[test]
    fn mig_memory_slices_constrain_two_way() {
        // Two 3g.40gb instances take 8 memory slices — allowed. A 4g
        // profile would need 4 slices × 2 = 8 as well, but only one 4g
        // fits compute-wise, so 3g is the right answer (covered above).
        // Three instances cannot use 3g (12 memory slices): planner must
        // step down to 2g.
        let s = spec();
        assert_eq!(equal_mig_profile(&s, 2).unwrap(), "3g.40gb");
    }

    #[test]
    fn mps_equal_percentages() {
        let p = plan(&spec(), 0, 4, &Strategy::MpsEqual).unwrap();
        assert_eq!(p.mode, DeviceMode::MpsPartitioned);
        assert_eq!(p.workers, vec![PlannedWorker::Percentage(25); 4]);
        let p3 = plan(&spec(), 0, 3, &Strategy::MpsEqual).unwrap();
        assert_eq!(p3.workers[0], PlannedWorker::Percentage(33));
    }

    #[test]
    fn weighted_validation() {
        assert!(matches!(
            plan(&spec(), 0, 3, &Strategy::MpsWeighted(vec![50, 25])),
            Err(PlanError::WeightLengthMismatch)
        ));
        assert!(matches!(
            plan(&spec(), 0, 2, &Strategy::MpsWeighted(vec![50, 0])),
            Err(PlanError::BadPercentage(0))
        ));
        let p = plan(&spec(), 1, 3, &Strategy::MpsWeighted(vec![50, 25, 30])).unwrap();
        assert_eq!(p.workers.len(), 3);
    }

    #[test]
    fn apply_mig_plan_creates_instances() {
        let mut fleet = GpuFleet::new();
        let g = fleet.add(spec());
        let p = plan(&spec(), 0, 3, &Strategy::MigEqual).unwrap();
        let specs = apply_plan(&mut fleet, &p).unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(fleet.device(g).mig.instance_count(), 3);
        for s in &specs {
            assert!(matches!(s, AcceleratorSpec::Mig(u) if u.contains("2g.20gb")));
        }
    }

    #[test]
    fn apply_mps_plan_starts_daemon() {
        let mut fleet = GpuFleet::new();
        let g = fleet.add(spec());
        let p = plan(&spec(), 0, 2, &Strategy::MpsEqual).unwrap();
        let specs = apply_plan(&mut fleet, &p).unwrap();
        assert!(fleet.device(g).mps.running());
        assert_eq!(
            specs,
            vec![
                AcceleratorSpec::GpuPercentage(0, 50),
                AcceleratorSpec::GpuPercentage(0, 50)
            ]
        );
    }

    #[test]
    fn vgpu_plan_slots() {
        let mut fleet = GpuFleet::new();
        let _ = fleet.add(spec());
        let p = plan(&spec(), 0, 4, &Strategy::Vgpu).unwrap();
        let specs = apply_plan(&mut fleet, &p).unwrap();
        assert_eq!(specs[3], AcceleratorSpec::VgpuSlot(0, 3));
    }

    #[test]
    fn fleet_plan_balances_across_gpus() {
        // 5 workers over 2 GPUs → 3 + 2, each with its own MPS split.
        let s = spec();
        let plans = plan_fleet(&s, &[0, 1], 5, &Strategy::MpsEqual).unwrap();
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].workers.len(), 3);
        assert_eq!(plans[1].workers.len(), 2);
        assert_eq!(plans[0].workers[0], PlannedWorker::Percentage(33));
        assert_eq!(plans[1].workers[0], PlannedWorker::Percentage(50));
    }

    #[test]
    fn fleet_apply_spans_devices() {
        let s = spec();
        let mut fleet = GpuFleet::new();
        let g0 = fleet.add(s.clone());
        let g1 = fleet.add(s.clone());
        let plans = plan_fleet(&s, &[0, 1], 4, &Strategy::MigEqual).unwrap();
        let specs = apply_fleet(&mut fleet, &plans).unwrap();
        assert_eq!(specs.len(), 4);
        assert_eq!(fleet.device(g0).mig.instance_count(), 2);
        assert_eq!(fleet.device(g1).mig.instance_count(), 2);
    }

    #[test]
    fn fleet_skips_surplus_gpus() {
        let s = spec();
        let plans = plan_fleet(&s, &[0, 1, 2, 3], 2, &Strategy::TimeSharing).unwrap();
        assert_eq!(plans.len(), 2, "two GPUs get one worker each, two get none");
    }

    #[test]
    fn zero_workers_rejected() {
        assert!(matches!(
            plan(&spec(), 0, 0, &Strategy::TimeSharing),
            Err(PlanError::NoWorkers)
        ));
    }
}
