//! Right-sizing GPU partitions — the §7 "understanding GPU resource
//! requirement" tool.
//!
//! Fig. 2's message is that LLaMa2 stops benefiting beyond ~20 SMs; the
//! paper's future work wants a tool that recommends how big a partition a
//! function actually needs. We implement the offline-profile variant:
//! sweep a latency profile over SM allocations (analytically or from
//! simulation), find the **knee** — the smallest allocation whose latency
//! is within a tolerance of the best achievable — and map it to an MPS
//! percentage or the smallest adequate MIG profile (also checking the
//! instance's memory against the model footprint).

use parfait_gpu::mig::profile_catalog;
use parfait_gpu::GpuSpec;
use serde::Serialize;

/// One point of an allocation→latency profile.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ProfilePoint {
    /// SMs made available.
    pub sms: f64,
    /// Observed latency in seconds.
    pub latency_s: f64,
}

/// Build a profile by sweeping `latency(sms)` over `grid`.
pub fn profile(
    latency: impl Fn(f64) -> f64,
    grid: impl IntoIterator<Item = f64>,
) -> Vec<ProfilePoint> {
    grid.into_iter()
        .map(|sms| ProfilePoint {
            sms,
            latency_s: latency(sms),
        })
        .collect()
}

/// The standard sweep grid for a device: every SM count from 2 to full.
pub fn full_grid(spec: &GpuSpec) -> Vec<f64> {
    (2..=spec.sms).map(|s| s as f64).collect()
}

/// Smallest allocation whose latency is within `(1 + tolerance)` of the
/// profile's minimum. `None` on an empty profile.
///
/// ```
/// use parfait_core::rightsize::{knee, profile};
///
/// // Latency improves to 20 SMs, flat beyond — Fig. 2's shape.
/// let pts = profile(|s| if s < 20.0 { 10.0 / s } else { 0.5 },
///                   (1..=108).map(|s| s as f64));
/// assert_eq!(knee(&pts, 0.05), Some(20.0));
/// ```
pub fn knee(points: &[ProfilePoint], tolerance: f64) -> Option<f64> {
    let best = points
        .iter()
        .map(|p| p.latency_s)
        .fold(f64::INFINITY, f64::min);
    if !best.is_finite() {
        return None;
    }
    let limit = best * (1.0 + tolerance);
    points
        .iter()
        .filter(|p| p.latency_s <= limit)
        .map(|p| p.sms)
        .fold(None, |acc: Option<f64>, s| {
            Some(acc.map_or(s, |a| a.min(s)))
        })
}

/// A partition recommendation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Recommendation {
    /// SMs at the knee.
    pub knee_sms: f64,
    /// MPS active-thread percentage to request (rounded up).
    pub mps_percentage: u32,
    /// Smallest adequate MIG profile, if any satisfies both the SM knee
    /// and the memory footprint.
    pub mig_profile: Option<&'static str>,
}

/// Recommend a partition for a function with the given latency profile
/// and resident-memory footprint.
pub fn recommend(
    spec: &GpuSpec,
    points: &[ProfilePoint],
    footprint_bytes: u64,
    tolerance: f64,
) -> Option<Recommendation> {
    let knee_sms = knee(points, tolerance)?;
    let mps_percentage = ((knee_sms / spec.sms as f64) * 100.0).ceil() as u32;
    let mig_profile = profile_catalog(spec)
        .into_iter()
        .filter(|p| {
            let sms = (p.compute_slices as u32 * spec.mig_slice_sms) as f64;
            let mem = spec.memory_bytes / 8 * p.memory_slices as u64;
            sms >= knee_sms && mem >= footprint_bytes
        })
        .min_by_key(|p| p.compute_slices)
        .map(|p| p.name);
    Some(Recommendation {
        knee_sms,
        mps_percentage: mps_percentage.clamp(1, 100),
        mig_profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfait_workloads::LlmSpec;

    #[test]
    fn knee_of_synthetic_elbow() {
        // latency = 10/sms for sms < 20, flat 0.5 beyond.
        let pts = profile(
            |s| if s < 20.0 { 10.0 / s } else { 0.5 },
            (1..=108).map(|s| s as f64),
        );
        let k = knee(&pts, 0.05).unwrap();
        assert_eq!(k, 20.0);
    }

    #[test]
    fn knee_tolerance_widens_choice() {
        let pts = profile(|s| 1.0 + 10.0 / s, (1..=100).map(|s| s as f64));
        // min at s=100 → 1.1; tol 0.2 → limit 1.32 → 10/s ≤ 0.32 → s ≥ 31.25.
        let k = knee(&pts, 0.2).unwrap();
        assert_eq!(k, 32.0);
        let tight = knee(&pts, 0.0).unwrap();
        assert_eq!(tight, 100.0);
    }

    #[test]
    fn empty_profile_is_none() {
        assert_eq!(knee(&[], 0.1), None);
    }

    #[test]
    fn llama7b_recommendation_matches_fig2() {
        // Profile the calibrated LLaMa2-7B model; the knee should land
        // near the paper's ~20 SMs and the MPS percentage near 19 %.
        let spec = GpuSpec::a100_40gb();
        let llm = LlmSpec::llama2_7b(4);
        let pts = profile(
            |sms| llm.solo_completion_seconds(&spec, sms, 16, 27),
            full_grid(&spec),
        );
        let rec = recommend(&spec, &pts, llm.footprint_bytes(), 0.10).unwrap();
        assert!(
            (14.0..=27.0).contains(&rec.knee_sms),
            "knee at {} SMs",
            rec.knee_sms
        );
        assert!(rec.mps_percentage <= 25, "pct {}", rec.mps_percentage);
    }

    #[test]
    fn mig_profile_respects_memory() {
        let spec = GpuSpec::a100_80gb();
        // Tiny compute knee but a 35 GiB footprint: 1g.10gb and 2g.20gb
        // are too small; needs 3g.40gb.
        let pts = profile(|s| 1.0 / s.min(10.0), full_grid(&spec));
        let rec = recommend(&spec, &pts, 35 * parfait_gpu::GIB, 0.05).unwrap();
        assert_eq!(rec.mig_profile, Some("3g.40gb"));
    }

    #[test]
    fn impossible_memory_yields_no_mig() {
        let spec = GpuSpec::a100_80gb();
        let pts = profile(|s| 1.0 / s, full_grid(&spec));
        let rec = recommend(&spec, &pts, 100 * parfait_gpu::GIB, 0.05).unwrap();
        assert_eq!(rec.mig_profile, None, "nothing holds 100 GiB");
    }

    #[test]
    fn resnet_needs_fewer_sms_than_full() {
        // Batch-1 ResNet-50 cannot fill an A100 (§3.4), so the knee must
        // be well under 108 SMs.
        use parfait_workloads::dnn::{exec, models};
        let spec = GpuSpec::a100_80gb();
        let m = models::resnet50();
        let pts = profile(
            |sms| exec::solo_latency(&m, &spec, 1, sms),
            full_grid(&spec),
        );
        let rec = recommend(&spec, &pts, m.weight_bytes(4), 0.10).unwrap();
        assert!(rec.knee_sms < 108.0, "knee {}", rec.knee_sms);
        assert!(rec.mig_profile.is_some());
    }
}
