//! Parsing the paper's enhanced `available_accelerators` configuration.
//!
//! §4.1/§4.2 extend Parsl's `HighThroughputExecutor` so that
//! `available_accelerators` may contain GPU indices (possibly repeated, to
//! multiplex one GPU across several workers), and a parallel
//! `gpu_percentage` list assigns each entry an MPS active-thread
//! percentage (Listing 2). Entries may instead be MIG instance UUIDs
//! (Listing 3). This module turns those user-facing strings into the
//! resolved [`AcceleratorSpec`]s the executor consumes.

use parfait_faas::AcceleratorSpec;
use std::fmt;

/// Errors from accelerator-list parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccelParseError {
    /// Entry was neither a GPU index nor a MIG UUID.
    BadEntry(String),
    /// `gpu_percentage` list length differs from the accelerator list.
    PercentageLengthMismatch {
        /// Accelerator entries.
        accelerators: usize,
        /// Percentage entries.
        percentages: usize,
    },
    /// Percentage outside `1..=100`.
    BadPercentage(u32),
    /// A percentage was attached to a MIG entry (MIG instances are sized
    /// by their profile, not by MPS percentages).
    PercentageOnMig(String),
    /// Percentages on one GPU exceed the paper's oversubscription guard.
    Oversubscribed {
        /// GPU index.
        gpu: u32,
        /// Sum of its percentages.
        total: u32,
    },
}

impl fmt::Display for AccelParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelParseError::BadEntry(e) => write!(f, "unrecognized accelerator entry {e:?}"),
            AccelParseError::PercentageLengthMismatch {
                accelerators,
                percentages,
            } => write!(
                f,
                "gpu_percentage has {percentages} entries for {accelerators} accelerators"
            ),
            AccelParseError::BadPercentage(p) => write!(f, "GPU percentage {p} outside 1..=100"),
            AccelParseError::PercentageOnMig(u) => {
                write!(f, "gpu_percentage cannot apply to MIG instance {u}")
            }
            AccelParseError::Oversubscribed { gpu, total } => {
                write!(f, "GPU {gpu} percentages sum to {total} (> 200% guard)")
            }
        }
    }
}

impl std::error::Error for AccelParseError {}

/// Parse one `available_accelerators` entry.
pub fn parse_entry(entry: &str) -> Result<AcceleratorSpec, AccelParseError> {
    let e = entry.trim();
    if e.starts_with("MIG-") {
        return Ok(AcceleratorSpec::Mig(e.to_string()));
    }
    e.parse::<u32>()
        .map(AcceleratorSpec::Gpu)
        .map_err(|_| AccelParseError::BadEntry(entry.to_string()))
}

/// Parse an accelerator list with an optional parallel `gpu_percentage`
/// list — the full Listing-2 surface. Duplicated GPU indices are the
/// multiplexing idiom and are preserved as distinct worker slots.
///
/// A >200 % per-GPU sum is rejected: MPS allows oversubscription, but the
/// executor treats heavy oversubscription as a configuration error (each
/// worker would thrash).
pub fn parse_accelerators(
    entries: &[&str],
    gpu_percentage: Option<&[u32]>,
) -> Result<Vec<AcceleratorSpec>, AccelParseError> {
    if let Some(p) = gpu_percentage {
        if p.len() != entries.len() {
            return Err(AccelParseError::PercentageLengthMismatch {
                accelerators: entries.len(),
                percentages: p.len(),
            });
        }
    }
    let mut out = Vec::with_capacity(entries.len());
    for (i, e) in entries.iter().enumerate() {
        let base = parse_entry(e)?;
        let spec = match (base, gpu_percentage.map(|p| p[i])) {
            (AcceleratorSpec::Gpu(g), Some(pct)) => {
                if !(1..=100).contains(&pct) {
                    return Err(AccelParseError::BadPercentage(pct));
                }
                AcceleratorSpec::GpuPercentage(g, pct)
            }
            (AcceleratorSpec::Mig(u), Some(_)) => {
                return Err(AccelParseError::PercentageOnMig(u));
            }
            (s, _) => s,
        };
        out.push(spec);
    }
    // Oversubscription guard per GPU.
    let mut sums: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
    for s in &out {
        if let AcceleratorSpec::GpuPercentage(g, p) = s {
            *sums.entry(*g).or_insert(0) += p;
        }
    }
    for (gpu, total) in sums {
        if total > 200 {
            return Err(AccelParseError::Oversubscribed { gpu, total });
        }
    }
    Ok(out)
}

/// Render specs back into the `available_accelerators` /
/// `gpu_percentage` string form (the inverse of [`parse_accelerators`],
/// used by monitoring dumps and config echo). MIG entries carry no
/// percentage; mixed lists render percentages only when any entry has
/// one, defaulting plain GPUs to 100.
pub fn format_accelerators(specs: &[AcceleratorSpec]) -> (Vec<String>, Option<Vec<u32>>) {
    let entries: Vec<String> = specs
        .iter()
        .map(|s| match s {
            AcceleratorSpec::Gpu(g) | AcceleratorSpec::GpuPercentage(g, _) => g.to_string(),
            AcceleratorSpec::Mig(u) => u.clone(),
            AcceleratorSpec::VgpuSlot(g, sl) => format!("vgpu{g}:{sl}"),
        })
        .collect();
    let any_pct = specs
        .iter()
        .any(|s| matches!(s, AcceleratorSpec::GpuPercentage(..)));
    let pcts = any_pct.then(|| {
        specs
            .iter()
            .map(|s| match s {
                AcceleratorSpec::GpuPercentage(_, p) => *p,
                _ => 100,
            })
            .collect()
    });
    (entries, pcts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_indices_parse() {
        assert_eq!(parse_entry("0").unwrap(), AcceleratorSpec::Gpu(0));
        assert_eq!(parse_entry(" 3 ").unwrap(), AcceleratorSpec::Gpu(3));
    }

    #[test]
    fn mig_uuids_parse() {
        let s = parse_entry("MIG-GPU0-2-3g.40gb").unwrap();
        assert_eq!(s, AcceleratorSpec::Mig("MIG-GPU0-2-3g.40gb".into()));
    }

    #[test]
    fn garbage_rejected() {
        assert!(matches!(
            parse_entry("gpu0"),
            Err(AccelParseError::BadEntry(_))
        ));
        assert!(matches!(
            parse_entry("-1"),
            Err(AccelParseError::BadEntry(_))
        ));
        assert!(matches!(parse_entry(""), Err(AccelParseError::BadEntry(_))));
    }

    #[test]
    fn listing2_shape() {
        // available_accelerators=['1','2','4'], gpu_percentage=[50,25,30].
        let specs = parse_accelerators(&["1", "2", "4"], Some(&[50, 25, 30])).unwrap();
        assert_eq!(
            specs,
            vec![
                AcceleratorSpec::GpuPercentage(1, 50),
                AcceleratorSpec::GpuPercentage(2, 25),
                AcceleratorSpec::GpuPercentage(4, 30),
            ]
        );
    }

    #[test]
    fn duplicated_gpu_multiplexes() {
        // Listing 2's "list the GPU twice" idiom.
        let specs = parse_accelerators(&["0", "0"], Some(&[50, 50])).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0], AcceleratorSpec::GpuPercentage(0, 50));
        assert_eq!(specs[1], AcceleratorSpec::GpuPercentage(0, 50));
    }

    #[test]
    fn length_mismatch_rejected() {
        let err = parse_accelerators(&["0", "1"], Some(&[50])).unwrap_err();
        assert!(matches!(
            err,
            AccelParseError::PercentageLengthMismatch {
                accelerators: 2,
                percentages: 1
            }
        ));
    }

    #[test]
    fn bad_percentage_rejected() {
        assert!(matches!(
            parse_accelerators(&["0"], Some(&[0])),
            Err(AccelParseError::BadPercentage(0))
        ));
        assert!(matches!(
            parse_accelerators(&["0"], Some(&[101])),
            Err(AccelParseError::BadPercentage(101))
        ));
    }

    #[test]
    fn percentage_on_mig_rejected() {
        let err = parse_accelerators(&["MIG-GPU0-0-1g.10gb"], Some(&[50])).unwrap_err();
        assert!(matches!(err, AccelParseError::PercentageOnMig(_)));
    }

    #[test]
    fn oversubscription_guard() {
        // 4 × 50 = 200 is allowed; 210 is not.
        assert!(parse_accelerators(&["0", "0", "0", "0"], Some(&[50, 50, 50, 50])).is_ok());
        let err = parse_accelerators(&["0", "0", "0"], Some(&[70, 70, 70])).unwrap_err();
        assert!(matches!(
            err,
            AccelParseError::Oversubscribed { gpu: 0, total: 210 }
        ));
    }

    #[test]
    fn format_roundtrips_percentage_lists() {
        let specs = parse_accelerators(&["1", "2", "4"], Some(&[50, 25, 30])).unwrap();
        let (entries, pcts) = format_accelerators(&specs);
        assert_eq!(entries, vec!["1", "2", "4"]);
        assert_eq!(pcts, Some(vec![50, 25, 30]));
        let refs: Vec<&str> = entries.iter().map(|s| s.as_str()).collect();
        let reparsed = parse_accelerators(&refs, pcts.as_deref()).unwrap();
        assert_eq!(reparsed, specs);
    }

    #[test]
    fn format_plain_list_omits_percentages() {
        let specs = parse_accelerators(&["0", "MIG-GPU1-0-2g.20gb"], None).unwrap();
        let (entries, pcts) = format_accelerators(&specs);
        assert_eq!(entries[1], "MIG-GPU1-0-2g.20gb");
        assert_eq!(pcts, None);
    }

    #[test]
    fn mixed_mig_and_plain_without_percentages() {
        let specs = parse_accelerators(&["0", "MIG-GPU1-0-2g.20gb"], None).unwrap();
        assert_eq!(specs[0], AcceleratorSpec::Gpu(0));
        assert!(matches!(specs[1], AcceleratorSpec::Mig(_)));
    }
}
