//! Demand-driven repartitioning — §7's "change GPU resources depending
//! on demand", end to end.
//!
//! The paper's future work wants the platform to *notice* that one
//! tenant's partition is too small for its demand and reallocate GPU
//! share at runtime. This module closes that loop over the pieces the
//! rest of the crate provides:
//!
//! 1. **observe** — per-executor queue depths (backlog = demand signal);
//! 2. **decide** — a proportional split of 100 % across tenants by
//!    backlog, clamped to a configurable floor so idle tenants keep a
//!    live instance;
//! 3. **act** — [`crate::reconfig::resize_mps`] (the §6 restart path,
//!    ideally with the §7 weight cache enabled so the restart re-binds
//!    instead of reloading).
//!
//! The controller runs as a periodic event; hysteresis (`min_shift`)
//! prevents resize thrash, because every act costs a process restart.

use crate::reconfig::{resize_mps, workers_on_gpu};
use parfait_faas::{AcceleratorSpec, FaasWorld};
use parfait_simcore::{Engine, SimDuration};
use serde::Serialize;

/// Controller parameters.
#[derive(Debug, Clone, Serialize)]
pub struct AutoscalePolicy {
    /// Control period.
    pub period: SimDuration,
    /// Minimum percentage any tenant keeps (floor).
    pub min_pct: u32,
    /// Only resize when some tenant's target differs from its current
    /// share by at least this many percentage points (hysteresis).
    pub min_shift: u32,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        AutoscalePolicy {
            period: SimDuration::from_secs(20),
            min_pct: 10,
            min_shift: 15,
        }
    }
}

/// A record of one controller decision.
#[derive(Debug, Clone, Serialize)]
pub struct AutoscaleEvent {
    /// Virtual time of the decision.
    pub at_s: f64,
    /// Observed backlog per tenant executor.
    pub backlogs: Vec<usize>,
    /// The split applied (None = held steady).
    pub applied: Option<Vec<u32>>,
}

/// Compute the proportional-backlog split across `n` tenants, with a
/// per-tenant floor. Deterministic and side-effect free (unit tested).
pub fn proportional_split(backlogs: &[usize], min_pct: u32) -> Vec<u32> {
    let n = backlogs.len() as u32;
    assert!(n > 0, "need at least one tenant");
    assert!(min_pct * n <= 100, "floors exceed the GPU");
    let total: usize = backlogs.iter().sum();
    if total == 0 {
        return vec![100 / n; backlogs.len()];
    }
    let budget = 100 - min_pct * n;
    let mut pcts: Vec<u32> = backlogs
        .iter()
        .map(|&b| min_pct + (budget as f64 * b as f64 / total as f64).floor() as u32)
        .collect();
    // Hand leftover points (from flooring) to the largest backlog.
    let assigned: u32 = pcts.iter().sum();
    if assigned < 100 {
        let max_i = backlogs
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| **b)
            .map(|(i, _)| i)
            .expect("non-empty");
        pcts[max_i] += 100 - assigned;
    }
    pcts
}

/// Start the controller for a set of single-worker tenant executors that
/// share GPU `gpu` under partitioned MPS. `tenants` maps executor index →
/// tenant slot, in the same order as the workers on the GPU.
///
/// Returns a handle to the decision log (readable after the run).
pub fn enable_autoscaler(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    gpu: u32,
    tenants: Vec<usize>,
    policy: AutoscalePolicy,
) -> std::rc::Rc<std::cell::RefCell<Vec<AutoscaleEvent>>> {
    let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    tick(world, eng, gpu, tenants, policy, std::rc::Rc::clone(&log));
    log
}

fn current_pcts(world: &FaasWorld, gpu: u32) -> Vec<u32> {
    workers_on_gpu(world, gpu)
        .into_iter()
        .map(|wid| match &world.workers[wid].accel {
            Some(AcceleratorSpec::GpuPercentage(_, p)) => *p,
            _ => 0,
        })
        .collect()
}

fn tick(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    gpu: u32,
    tenants: Vec<usize>,
    policy: AutoscalePolicy,
    log: std::rc::Rc<std::cell::RefCell<Vec<AutoscaleEvent>>>,
) {
    let backlogs: Vec<usize> = tenants.iter().map(|&e| world.queues[e].len()).collect();
    let target = proportional_split(&backlogs, policy.min_pct);
    let current = current_pcts(world, gpu);
    let shift = target
        .iter()
        .zip(current.iter().chain(std::iter::repeat(&0)))
        .map(|(t, c)| t.abs_diff(*c))
        .max()
        .unwrap_or(0);
    // Resizing restarts the tenant processes (§6); any in-flight request
    // fails and retries after the restart — exactly the cost the §7
    // weight cache is built to shrink. Hysteresis keeps this rare.
    let applied = if shift >= policy.min_shift && current.len() == target.len() {
        resize_mps(world, eng, gpu, &target)
            .ok()
            .map(|_| target.clone())
    } else {
        None
    };
    log.borrow_mut().push(AutoscaleEvent {
        at_s: eng.now().as_secs_f64(),
        backlogs,
        applied,
    });
    // Keep controlling while work remains anywhere.
    let active = !world.dfk.all_settled();
    if active {
        let log2 = std::rc::Rc::clone(&log);
        eng.schedule_in(policy.period, move |w: &mut FaasWorld, e| {
            tick(w, e, gpu, tenants, policy, log2)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_split_properties() {
        // Sums to 100, respects the floor, tracks backlog ratios.
        let p = proportional_split(&[30, 10], 10);
        assert_eq!(p.iter().sum::<u32>(), 100);
        assert!(p[0] > p[1]);
        assert!(p.iter().all(|&x| x >= 10));
        assert_eq!(p, vec![70, 30]);
    }

    #[test]
    fn zero_backlog_is_equal_split() {
        assert_eq!(proportional_split(&[0, 0, 0, 0], 10), vec![25; 4]);
    }

    #[test]
    fn one_sided_backlog_hits_floor() {
        let p = proportional_split(&[100, 0], 10);
        assert_eq!(p, vec![90, 10]);
    }

    #[test]
    #[should_panic(expected = "floors exceed")]
    fn impossible_floor_rejected() {
        proportional_split(&[1, 1, 1], 40);
    }
}
