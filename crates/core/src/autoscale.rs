//! Demand-driven repartitioning — §7's "change GPU resources depending
//! on demand", end to end.
//!
//! The paper's future work wants the platform to *notice* that one
//! tenant's partition is too small for its demand and reallocate GPU
//! share at runtime. This module closes that loop over the pieces the
//! rest of the crate provides:
//!
//! 1. **observe** — per-executor queue depths (backlog = demand signal);
//! 2. **decide** — a proportional split of 100 % across tenants by
//!    backlog, clamped to a configurable floor so idle tenants keep a
//!    live instance;
//! 3. **act** — [`crate::reconfig::resize_mps`] (the §6 restart path,
//!    ideally with the §7 weight cache enabled so the restart re-binds
//!    instead of reloading).
//!
//! The controller runs as a periodic event; hysteresis (`min_shift`)
//! prevents resize thrash, because every act costs a process restart.
//!
//! Two controllers live here:
//!
//! * [`enable_autoscaler`] — the original single-GPU backlog controller
//!   acting through the *immediate* [`resize_mps`] path.
//! * [`enable_slo_autoscaler`] — the closed-loop SLO controller
//!   (DESIGN.md §11): fleet-wide, latency-aware ([`demand_scores`] folds
//!   the monitoring EWMA into the backlog signal), acting through the
//!   *staged* [`begin_resize_mps`] transaction, with stability guards —
//!   hysteresis, per-GPU cooldown, a concurrent-reconfig limit, refusal
//!   on fenced/draining devices, and a capacity floor that holds the
//!   plan steady while the fleet is degraded (correlated outage) or
//!   shedding load.

use crate::reconfig::{begin_resize_mps, resize_mps, workers_on_gpu};
use parfait_faas::{gpu_quarantined, AcceleratorSpec, FaasWorld};
use parfait_gpu::GpuId;
use parfait_simcore::{Engine, SimDuration, SimTime};
use serde::Serialize;
use std::cell::RefCell;
use std::rc::Rc;

/// Controller parameters.
#[derive(Debug, Clone, Serialize)]
pub struct AutoscalePolicy {
    /// Control period.
    pub period: SimDuration,
    /// Minimum percentage any tenant keeps (floor).
    pub min_pct: u32,
    /// Only resize when some tenant's target differs from its current
    /// share by at least this many percentage points (hysteresis).
    pub min_shift: u32,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        AutoscalePolicy {
            period: SimDuration::from_secs(20),
            min_pct: 10,
            min_shift: 15,
        }
    }
}

/// A record of one controller decision.
#[derive(Debug, Clone, Serialize)]
pub struct AutoscaleEvent {
    /// Virtual time of the decision.
    pub at_s: f64,
    /// Observed backlog per tenant executor.
    pub backlogs: Vec<usize>,
    /// The split applied (None = held steady).
    pub applied: Option<Vec<u32>>,
}

/// Compute the proportional-backlog split across `n` tenants, with a
/// per-tenant floor. Deterministic and side-effect free (unit tested).
pub fn proportional_split(backlogs: &[usize], min_pct: u32) -> Vec<u32> {
    let n = backlogs.len() as u32;
    assert!(n > 0, "need at least one tenant");
    assert!(min_pct * n <= 100, "floors exceed the GPU");
    let total: usize = backlogs.iter().sum();
    if total == 0 {
        return vec![100 / n; backlogs.len()];
    }
    let budget = 100 - min_pct * n;
    let mut pcts: Vec<u32> = backlogs
        .iter()
        .map(|&b| min_pct + (budget as f64 * b as f64 / total as f64).floor() as u32)
        .collect();
    // Hand leftover points (from flooring) to the largest backlog.
    let assigned: u32 = pcts.iter().sum();
    if assigned < 100 {
        let max_i = backlogs
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| **b)
            .map(|(i, _)| i)
            .expect("non-empty");
        pcts[max_i] += 100 - assigned;
    }
    pcts
}

/// Start the controller for a set of single-worker tenant executors that
/// share GPU `gpu` under partitioned MPS. `tenants` maps executor index →
/// tenant slot, in the same order as the workers on the GPU.
///
/// Returns a handle to the decision log (readable after the run).
pub fn enable_autoscaler(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    gpu: u32,
    tenants: Vec<usize>,
    policy: AutoscalePolicy,
) -> std::rc::Rc<std::cell::RefCell<Vec<AutoscaleEvent>>> {
    let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    tick(world, eng, gpu, tenants, policy, std::rc::Rc::clone(&log));
    log
}

fn current_pcts(world: &FaasWorld, gpu: u32) -> Vec<u32> {
    workers_on_gpu(world, gpu)
        .into_iter()
        .map(|wid| match &world.workers[wid].accel {
            Some(AcceleratorSpec::GpuPercentage(_, p)) => *p,
            _ => 0,
        })
        .collect()
}

fn tick(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    gpu: u32,
    tenants: Vec<usize>,
    policy: AutoscalePolicy,
    log: std::rc::Rc<std::cell::RefCell<Vec<AutoscaleEvent>>>,
) {
    let backlogs: Vec<usize> = tenants.iter().map(|&e| world.queues[e].len()).collect();
    let target = proportional_split(&backlogs, policy.min_pct);
    let current = current_pcts(world, gpu);
    let shift = target
        .iter()
        .zip(current.iter().chain(std::iter::repeat(&0)))
        .map(|(t, c)| t.abs_diff(*c))
        .max()
        .unwrap_or(0);
    // Resizing restarts the tenant processes (§6); any in-flight request
    // fails and retries after the restart — exactly the cost the §7
    // weight cache is built to shrink. Hysteresis keeps this rare.
    let applied = if shift >= policy.min_shift && current.len() == target.len() {
        resize_mps(world, eng, gpu, &target)
            .ok()
            .map(|_| target.clone())
    } else {
        None
    };
    log.borrow_mut().push(AutoscaleEvent {
        at_s: eng.now().as_secs_f64(),
        backlogs,
        applied,
    });
    // Keep controlling while work remains anywhere.
    let active = !world.dfk.all_settled();
    if active {
        let log2 = std::rc::Rc::clone(&log);
        eng.schedule_in(policy.period, move |w: &mut FaasWorld, e| {
            tick(w, e, gpu, tenants, policy, log2)
        });
    }
}

/// Parameters for the closed-loop SLO controller.
#[derive(Debug, Clone, Serialize)]
pub struct SloPolicy {
    /// Control period.
    pub period: SimDuration,
    /// Per-task turnaround objective; the latency EWMA is compared
    /// against this when weighing demand.
    pub slo: SimDuration,
    /// Minimum percentage any tenant keeps (floor).
    pub min_pct: u32,
    /// Hysteresis: only reconfigure when some tenant's target share
    /// moves by at least this many points.
    pub min_shift: u32,
    /// Per-GPU cooldown between started reconfigurations.
    pub cooldown: SimDuration,
    /// Fleet-wide cap on concurrently draining GPUs.
    pub max_concurrent: usize,
    /// Keep ticking until this horizon even when no submitted task is
    /// outstanding. Open-loop drivers set this to the last arrival time:
    /// a lull where everything submitted so far has finished must not
    /// kill the controller with more arrivals still to come. `None`
    /// (default) stops as soon as the DFK settles.
    pub run_until: Option<SimTime>,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            period: SimDuration::from_secs(15),
            slo: SimDuration::from_secs(1),
            min_pct: 10,
            min_shift: 15,
            cooldown: SimDuration::from_secs(30),
            max_concurrent: 2,
            run_until: None,
        }
    }
}

/// One GPU under SLO control and the tenant executors sharing it (in
/// the same order as its workers).
#[derive(Debug, Clone, Serialize)]
pub struct GpuTenancy {
    /// Fleet GPU index.
    pub gpu: u32,
    /// Executor index per tenant slot.
    pub tenants: Vec<usize>,
}

/// What the SLO controller did for one GPU on one tick.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum SloAction {
    /// Within hysteresis; no change needed.
    Hold,
    /// A fleet-wide capacity floor held the plan steady (correlated
    /// outage in progress, or the overload layer is shedding).
    Suppressed(&'static str),
    /// A per-GPU stability guard refused the reconfiguration.
    Refused(&'static str),
    /// A staged reconfiguration transaction was started with this
    /// target split.
    Started(Vec<u32>),
}

/// A record of one SLO-controller decision (one GPU, one tick).
#[derive(Debug, Clone, Serialize)]
pub struct SloDecision {
    /// Virtual time of the decision.
    pub at_s: f64,
    /// The GPU it concerns.
    pub gpu: u32,
    /// Observed backlog per tenant.
    pub backlogs: Vec<usize>,
    /// Latency EWMA per tenant (0 until a completion is observed).
    pub latency_s: Vec<f64>,
    /// The outcome.
    pub action: SloAction,
}

/// Fold queue depth and SLO attainment into one demand score per tenant.
///
/// Backlog is the primary signal; a latency EWMA above the objective
/// inflates it (and contributes a virtual backlog of one, so a tenant
/// whose queue happens to be empty at the sampling instant but whose
/// completions are missing the SLO still bids for share). The overrun
/// multiplier is `2·ewma/slo`, capped at 8× so one pathological tenant
/// cannot starve the rest. Deterministic and side-effect free.
pub fn demand_scores(backlogs: &[usize], latency_s: &[Option<f64>], slo_s: f64) -> Vec<usize> {
    assert_eq!(backlogs.len(), latency_s.len());
    assert!(slo_s > 0.0, "SLO must be positive");
    backlogs
        .iter()
        .zip(latency_s)
        .map(|(&b, l)| match l {
            Some(lat) if *lat > slo_s => {
                let mult = ((lat / slo_s) * 2.0).min(8.0).round() as usize;
                (b + 1) * mult
            }
            _ => b,
        })
        .collect()
}

struct SloCtrl {
    plan: Vec<GpuTenancy>,
    policy: SloPolicy,
    /// Per-GPU time of the last *started* transaction (cooldown basis).
    last_started: Vec<Option<SimTime>>,
    /// Smoothed backlog per plan entry per tenant (`0.5·prev + 0.5·now`):
    /// an instantaneous queue snapshot is far too noisy to repartition
    /// on — one stray task sampled in an otherwise idle tenant's queue
    /// must not flip the whole allocation (each flip costs every worker
    /// on the GPU a §6 restart).
    demand_ewma: Vec<Vec<f64>>,
    /// Shed/reject totals at the previous tick; a positive delta means
    /// the overload layer is actively dropping work.
    prev_dropped: u64,
    log: Rc<RefCell<Vec<SloDecision>>>,
}

/// Start the closed-loop SLO controller over a fleet `plan`. Each entry
/// names one MPS-partitioned GPU and the tenant executors on it (one
/// single-worker executor per tenant slot, like [`enable_autoscaler`]).
///
/// Returns the decision log, readable after the run.
pub fn enable_slo_autoscaler(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    plan: Vec<GpuTenancy>,
    policy: SloPolicy,
) -> Rc<RefCell<Vec<SloDecision>>> {
    let log = Rc::new(RefCell::new(Vec::new()));
    let ctrl = SloCtrl {
        last_started: vec![None; plan.len()],
        demand_ewma: plan.iter().map(|p| vec![0.0; p.tenants.len()]).collect(),
        prev_dropped: world.overload.stats.tasks_shed + world.overload.stats.tasks_rejected,
        plan,
        policy,
        log: Rc::clone(&log),
    };
    slo_tick(world, eng, ctrl);
    log
}

/// One control round: evaluate every GPU in the plan, then reschedule.
fn slo_tick(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, mut ctrl: SloCtrl) {
    let now = eng.now();
    // Capacity floor (fleet-wide): while a correlated outage has devices
    // fenced, or the overload layer started shedding since the last
    // tick, every resize is suppressed — scaling *down* a healthy
    // tenant's share mid-incident converts degraded capacity into SLO
    // misses, and the post-incident tick re-evaluates anyway.
    let dropped = world.overload.stats.tasks_shed + world.overload.stats.tasks_rejected;
    let shedding = dropped > ctrl.prev_dropped;
    ctrl.prev_dropped = dropped;
    let outage = (0..world.fleet.len() as u32).any(|g| gpu_quarantined(world, GpuId(g)));
    let floor: Option<&'static str> = if outage {
        Some("correlated-outage")
    } else if shedding {
        Some("overload-shed")
    } else {
        None
    };

    for i in 0..ctrl.plan.len() {
        let gpu = ctrl.plan[i].gpu;
        let tenants = ctrl.plan[i].tenants.clone();
        let backlogs: Vec<usize> = tenants.iter().map(|&e| world.queues[e].len()).collect();
        for (e, &b) in ctrl.demand_ewma[i].iter_mut().zip(&backlogs) {
            *e = 0.5 * *e + 0.5 * b as f64;
        }
        let smoothed: Vec<usize> = ctrl.demand_ewma[i]
            .iter()
            .map(|e| e.floor() as usize)
            .collect();
        let slo_s = ctrl.policy.slo.as_secs_f64();
        let latencies: Vec<Option<f64>> = tenants
            .iter()
            .map(|&e| world.monitor.latency_ewma(e))
            .collect();
        let latency_s: Vec<f64> = latencies.iter().map(|l| l.unwrap_or(0.0)).collect();

        let action = if let Some(reason) = floor {
            SloAction::Suppressed(reason)
        } else if gpu_quarantined(world, GpuId(gpu)) {
            SloAction::Refused("gpu-fenced")
        } else if world.reconfig.drain_active(gpu) {
            SloAction::Refused("drain-active")
        } else if world.reconfig.active_drains() >= ctrl.policy.max_concurrent {
            SloAction::Refused("concurrency-limit")
        } else if ctrl.last_started[i].is_some_and(|t| now.duration_since(t) < ctrl.policy.cooldown)
        {
            SloAction::Refused("cooldown")
        } else {
            let scores = demand_scores(&smoothed, &latencies, slo_s);
            let target = proportional_split(&scores, ctrl.policy.min_pct);
            let current = current_pcts(world, gpu);
            let shift = target
                .iter()
                .zip(current.iter().chain(std::iter::repeat(&0)))
                .map(|(t, c)| t.abs_diff(*c))
                .max()
                .unwrap_or(0);
            // Distress gate: act only when some tenant shows real demand
            // pressure (a sustained backlog, or an SLO miss — which
            // scores at least (0+1)·2 = 2). Without it the controller
            // walks a working split back toward equal the moment the
            // distress it cured subsides, paying two restarts per demand
            // peak instead of one.
            let distressed = scores.iter().any(|&s| s >= 2);
            if current.len() != target.len() || shift < ctrl.policy.min_shift || !distressed {
                SloAction::Hold
            } else {
                match begin_resize_mps(world, eng, gpu, target.clone()) {
                    Ok(()) => {
                        ctrl.last_started[i] = Some(now);
                        SloAction::Started(target)
                    }
                    Err(_) => SloAction::Refused("begin-refused"),
                }
            }
        };
        ctrl.log.borrow_mut().push(SloDecision {
            at_s: now.as_secs_f64(),
            gpu,
            backlogs,
            latency_s,
            action,
        });
    }

    let keep_alive = ctrl.policy.run_until.is_some_and(|t| now < t);
    if !world.dfk.all_settled() || keep_alive {
        let period = ctrl.policy.period;
        eng.schedule_in(period, move |w: &mut FaasWorld, e| slo_tick(w, e, ctrl));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_split_properties() {
        // Sums to 100, respects the floor, tracks backlog ratios.
        let p = proportional_split(&[30, 10], 10);
        assert_eq!(p.iter().sum::<u32>(), 100);
        assert!(p[0] > p[1]);
        assert!(p.iter().all(|&x| x >= 10));
        assert_eq!(p, vec![70, 30]);
    }

    #[test]
    fn zero_backlog_is_equal_split() {
        assert_eq!(proportional_split(&[0, 0, 0, 0], 10), vec![25; 4]);
    }

    #[test]
    fn one_sided_backlog_hits_floor() {
        let p = proportional_split(&[100, 0], 10);
        assert_eq!(p, vec![90, 10]);
    }

    #[test]
    #[should_panic(expected = "floors exceed")]
    fn impossible_floor_rejected() {
        proportional_split(&[1, 1, 1], 40);
    }

    #[test]
    fn demand_scores_pass_backlog_through_when_slo_met() {
        // Latency at or under the objective: the score is the backlog.
        let s = demand_scores(&[5, 0], &[Some(0.8), Some(1.0)], 1.0);
        assert_eq!(s, vec![5, 0]);
    }

    #[test]
    fn demand_scores_inflate_slo_misses() {
        // 2 s EWMA against a 1 s SLO: 4x multiplier on backlog+1; an
        // empty queue still bids (virtual backlog of one).
        let s = demand_scores(&[5, 0], &[Some(2.0), Some(2.0)], 1.0);
        assert_eq!(s, vec![24, 4]);
        // The multiplier saturates at 8x however bad the overrun.
        let s = demand_scores(&[1, 0], &[Some(100.0), None], 1.0);
        assert_eq!(s, vec![16, 0]);
    }
}
