//! Policy layer over the GPU-resident weight cache (§7 future work).
//!
//! The mechanism lives in `parfait-faas::cache` (lookup + device-pinned
//! accounting, consulted by the worker's model-load path). This module
//! adds what an operator would script around it: enabling the apparatus,
//! reporting, and eviction to reclaim pinned memory under pressure.

use parfait_faas::FaasWorld;
use parfait_gpu::GpuId;
use serde::Serialize;

/// Turn the cache on for a platform (stock Parsl behaviour = off).
pub fn enable(world: &mut FaasWorld) {
    world.weight_cache.set_enabled(true);
}

/// Cache effectiveness report.
#[derive(Debug, Clone, Serialize)]
pub struct CacheReport {
    /// Re-binds served from resident weights.
    pub hits: u64,
    /// Cold loads that populated the cache.
    pub misses: u64,
    /// Hit rate over all lookups.
    pub hit_rate: f64,
    /// Entries resident.
    pub entries: usize,
    /// Bytes pinned per GPU index.
    pub pinned_bytes: Vec<(u32, u64)>,
}

/// Snapshot cache effectiveness.
pub fn report(world: &FaasWorld) -> CacheReport {
    let gpus = world.fleet.len() as u32;
    CacheReport {
        hits: world.weight_cache.hits,
        misses: world.weight_cache.misses,
        hit_rate: world.weight_cache.hit_rate(),
        entries: world.weight_cache.len(),
        pinned_bytes: (0..gpus)
            .map(|g| (g, world.weight_cache.bytes_on(g)))
            .filter(|(_, b)| *b > 0)
            .collect(),
    }
}

/// Evict one model's weights from one GPU, releasing the pinned memory.
/// Returns the bytes released (0 if absent).
pub fn evict(world: &mut FaasWorld, gpu: u32, model: u64) -> u64 {
    match world.weight_cache.remove(gpu, model) {
        Some(bytes) => {
            world
                .fleet
                .device_mut(GpuId(gpu))
                .cache_free(bytes)
                .expect("cache accounting consistent");
            bytes
        }
        None => 0,
    }
}
