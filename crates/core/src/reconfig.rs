//! Live reconfiguration of GPU partitions — the §6 cost model, executable.
//!
//! The paper measures two reconfiguration paths:
//!
//! * **MPS resize** — the active-thread percentage is fixed at client
//!   start, so changing a worker's share means killing and respawning
//!   its process: a full cold start plus a model reload ("10–20 seconds
//!   of setup time" for LLaMa2).
//! * **MIG resize** — all applications on the GPU must shut down, the
//!   GPU resets (an extra 1–2 s), instances are re-created, and every
//!   worker restarts.
//!
//! Both paths are implemented against the live platform; the timings fall
//! out of the simulation (cold-start model + load bandwidth + reset
//! constant) rather than being asserted. The §7 weight cache shortens the
//! MPS path by turning the model reload into a re-bind.

use crate::planner::{apply_plan, plan, PartitionPlan, PlanError, Strategy};
use parfait_faas::{kill_worker, respawn_worker, AcceleratorSpec, FaasWorld};
use parfait_gpu::{DeviceMode, GpuId};
use parfait_simcore::{Engine, SimDuration, SimTime};
use serde::Serialize;

/// GPU reset time for MIG reconfiguration (§6: "1–2 seconds").
pub const MIG_RESET_TIME: SimDuration = SimDuration::from_millis(1_500);

/// What a reconfiguration did (timestamps let callers measure downtime).
#[derive(Debug, Clone, Serialize)]
pub struct ReconfigReport {
    /// GPU index.
    pub gpu: u32,
    /// Wall-clock start (virtual).
    pub initiated_at: SimTime,
    /// Workers killed and respawned.
    pub workers_restarted: Vec<usize>,
    /// Whether a GPU reset was required (MIG path).
    pub gpu_reset: bool,
    /// New per-worker bindings.
    pub new_specs: Vec<AcceleratorSpec>,
}

/// Analytic cost of one MPS resize for a tenant whose model image is
/// `model_bytes` on `spec` (§6): process restart (function init + CUDA
/// context) plus either a full weight reload or a §7 cache re-bind.
pub fn estimate_mps_resize_cost(
    spec: &parfait_gpu::GpuSpec,
    cold: &parfait_gpu::context::ColdStartModel,
    model_bytes: u64,
    weight_cache_hit: bool,
) -> SimDuration {
    let b = if weight_cache_hit {
        cold.mean_with_cache_hit(Some(spec))
    } else {
        cold.mean(Some(spec), model_bytes)
    };
    b.total()
}

/// Analytic cost of one MIG reconfiguration (§6): GPU reset plus a full
/// tenant restart. Restarts proceed in parallel across tenants, each
/// reloading its own weights, so the outage is reset + one cold start —
/// and the reset wipes the §7 weight cache, so there are no cache hits.
pub fn estimate_mig_reconfig_cost(
    spec: &parfait_gpu::GpuSpec,
    cold: &parfait_gpu::context::ColdStartModel,
    model_bytes: u64,
) -> SimDuration {
    MIG_RESET_TIME + cold.mean(Some(spec), model_bytes).total()
}

/// Workers currently bound to a GPU (any state but Dead).
pub fn workers_on_gpu(world: &FaasWorld, gpu: u32) -> Vec<usize> {
    world
        .workers
        .iter()
        .filter(|w| {
            w.state != parfait_faas::WorkerState::Dead
                && match &w.accel {
                    Some(AcceleratorSpec::Gpu(g))
                    | Some(AcceleratorSpec::GpuPercentage(g, _))
                    | Some(AcceleratorSpec::VgpuSlot(g, _)) => *g == gpu,
                    Some(AcceleratorSpec::Mig(uuid)) => {
                        world.fleet.device(GpuId(gpu)).mig.by_uuid(uuid).is_some()
                    }
                    None => false,
                }
        })
        .map(|w| w.id)
        .collect()
}

/// Resize MPS partitions: kill each worker on `gpu` and respawn it with
/// the new percentage. The device stays in `MpsPartitioned` mode and
/// other GPUs are untouched — but each worker pays a §6 restart.
pub fn resize_mps(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    gpu: u32,
    new_percentages: &[u32],
) -> Result<ReconfigReport, PlanError> {
    let victims = workers_on_gpu(world, gpu);
    if victims.len() != new_percentages.len() {
        return Err(PlanError::WeightLengthMismatch);
    }
    for &p in new_percentages {
        if !(1..=100).contains(&p) {
            return Err(PlanError::BadPercentage(p));
        }
    }
    let initiated_at = eng.now();
    let mut new_specs = Vec::new();
    for (&wid, &pct) in victims.iter().zip(new_percentages) {
        // §6: the env var is read at process start — restart required.
        kill_worker(world, eng, wid, "MPS resize");
        let spec = AcceleratorSpec::GpuPercentage(gpu, pct);
        new_specs.push(spec.clone());
        respawn_worker(world, eng, wid, Some(spec)).expect("worker was just killed");
    }
    Ok(ReconfigReport {
        gpu,
        initiated_at,
        workers_restarted: victims,
        gpu_reset: false,
        new_specs,
    })
}

/// Reconfigure MIG to `k` equal instances: shut down *every* application
/// on the GPU, reset it (destroying instances, wiping memory and the
/// weight cache), re-create instances, and respawn the workers bound to
/// the new UUIDs. Worker respawn is delayed by [`MIG_RESET_TIME`].
pub fn reconfigure_mig_equal(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    gpu: u32,
    k: usize,
) -> Result<ReconfigReport, PlanError> {
    let victims = workers_on_gpu(world, gpu);
    if victims.len() != k {
        return Err(PlanError::WeightLengthMismatch);
    }
    let initiated_at = eng.now();
    for &wid in &victims {
        kill_worker(world, eng, wid, "MIG reconfiguration");
    }
    // Reset: drops contexts, allocations, instances — and the weight
    // cache contents on this GPU.
    let now = eng.now();
    world.fleet.device_mut(GpuId(gpu)).reset(now);
    world.weight_cache.clear_gpu(gpu);
    let gpu_spec = world.fleet.device(GpuId(gpu)).spec.clone();
    let p: PartitionPlan = plan(&gpu_spec, gpu, k, &Strategy::MigEqual)?;
    // The reset takes 1-2 s before instances exist; model it by making
    // the device unusable and respawning the workers after the delay.
    let new_specs = apply_plan(&mut world.fleet, &p)?;
    let pairs: Vec<(usize, AcceleratorSpec)> = victims
        .iter()
        .copied()
        .zip(new_specs.iter().cloned())
        .collect();
    eng.schedule_in(MIG_RESET_TIME, move |w: &mut FaasWorld, e| {
        for (wid, spec) in pairs {
            respawn_worker(w, e, wid, Some(spec)).expect("worker was just killed");
        }
    });
    Ok(ReconfigReport {
        gpu,
        initiated_at,
        workers_restarted: victims,
        gpu_reset: true,
        new_specs,
    })
}

/// Switch a GPU's sharing strategy wholesale (e.g. time-sharing → MPS):
/// kill residents, change mode, respawn with the plan's bindings.
pub fn switch_strategy(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    gpu: u32,
    strategy: &Strategy,
) -> Result<ReconfigReport, PlanError> {
    let victims = workers_on_gpu(world, gpu);
    let initiated_at = eng.now();
    for &wid in &victims {
        kill_worker(world, eng, wid, "strategy switch");
    }
    let now = eng.now();
    world.fleet.device_mut(GpuId(gpu)).reset(now);
    world.weight_cache.clear_gpu(gpu);
    let gpu_spec = world.fleet.device(GpuId(gpu)).spec.clone();
    let p = plan(&gpu_spec, gpu, victims.len(), strategy)?;
    let needs_reset = matches!(p.mode, DeviceMode::Mig);
    let new_specs = apply_plan(&mut world.fleet, &p)?;
    if needs_reset {
        let pairs: Vec<(usize, AcceleratorSpec)> = victims
            .iter()
            .copied()
            .zip(new_specs.iter().cloned())
            .collect();
        eng.schedule_in(MIG_RESET_TIME, move |w: &mut FaasWorld, e| {
            for (wid, spec) in pairs {
                respawn_worker(w, e, wid, Some(spec)).expect("worker was just killed");
            }
        });
    } else {
        for (&wid, spec) in victims.iter().zip(&new_specs) {
            respawn_worker(world, eng, wid, Some(spec.clone())).expect("worker was just killed");
        }
    }
    Ok(ReconfigReport {
        gpu,
        initiated_at,
        workers_restarted: victims,
        gpu_reset: needs_reset,
        new_specs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfait_gpu::context::ColdStartModel;
    use parfait_gpu::GpuSpec;

    #[test]
    fn resize_estimates_match_paper_bands() {
        let spec = GpuSpec::a100_80gb();
        let cold = ColdStartModel::default();
        let fp16_7b = 7_000_000_000u64 * 2;
        let stock = estimate_mps_resize_cost(&spec, &cold, fp16_7b, false).as_secs_f64();
        let cached = estimate_mps_resize_cost(&spec, &cold, fp16_7b, true).as_secs_f64();
        // §6: restart with reload lands in the ~8-20 s band; the cache
        // collapses it to process startup (~2.5 s).
        assert!((7.0..=20.0).contains(&stock), "stock {stock}");
        assert!(cached < 3.5, "cached {cached}");
        assert!(stock / cached > 2.5);
    }

    #[test]
    fn mig_estimate_exceeds_mps_by_the_reset() {
        let spec = GpuSpec::a100_80gb();
        let cold = ColdStartModel::default();
        let fp16_7b = 7_000_000_000u64 * 2;
        let mps = estimate_mps_resize_cost(&spec, &cold, fp16_7b, false);
        let mig = estimate_mig_reconfig_cost(&spec, &cold, fp16_7b);
        assert_eq!(mig, MIG_RESET_TIME + mps, "MIG = reset + full restart");
    }
}
