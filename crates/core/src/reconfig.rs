//! Live reconfiguration of GPU partitions — the §6 cost model, executable.
//!
//! The paper measures two reconfiguration paths:
//!
//! * **MPS resize** — the active-thread percentage is fixed at client
//!   start, so changing a worker's share means killing and respawning
//!   its process: a full cold start plus a model reload ("10–20 seconds
//!   of setup time" for LLaMa2).
//! * **MIG resize** — all applications on the GPU must shut down, the
//!   GPU resets (an extra 1–2 s), instances are re-created, and every
//!   worker restarts.
//!
//! Both paths are implemented against the live platform; the timings fall
//! out of the simulation (cold-start model + load bandwidth + reset
//! constant) rather than being asserted. The §7 weight cache shortens the
//! MPS path by turning the model reload into a re-bind.
//!
//! Two tiers of API (DESIGN.md §11):
//!
//! * [`resize_mps`] / [`reconfigure_mig_equal`] / [`switch_strategy`] —
//!   *immediate* reconfiguration: victims are killed on the spot (their
//!   in-flight tasks fail and retry). Refuses unhealthy targets.
//! * [`begin_resize_mps`] / [`begin_reconfigure_mig`] — *staged*
//!   transactions: a [`parfait_faas::begin_drain`] quiesces the victims
//!   first (stop-dispatch → checkpoint → await → timeout force-kill),
//!   then the commit runs with injectable failure
//!   ([`parfait_faas::reconfig_commit_fails`]):
//!
//!   | outcome | MPS path | MIG path |
//!   |---|---|---|
//!   | fenced mid-drain | abort, keep old shares | abort, keep old slices |
//!   | commit fails | rollback: budgeted respawn with old shares | degraded: device quarantined, workers parked for re-admission |
//!   | commit succeeds | respawn with new shares | reset + re-slice, respawn after [`MIG_RESET_TIME`] |

use crate::planner::{apply_plan, plan, PartitionPlan, PlanError, Strategy};
use parfait_faas::{
    auto_respawn, begin_drain, gpu_quarantined, kill_worker, quarantine_gpu, reconfig_commit_fails,
    respawn_worker, AcceleratorSpec, FaasWorld, FaultPhase, WorkerState,
};
use parfait_gpu::{DeviceMode, GpuId};
use parfait_simcore::{Engine, SimDuration, SimTime};
use serde::Serialize;

/// GPU reset time for MIG reconfiguration (§6: "1–2 seconds").
pub const MIG_RESET_TIME: SimDuration = SimDuration::from_millis(1_500);

/// Why a reconfiguration was refused (before any worker was touched).
#[derive(Debug, Clone, PartialEq)]
pub enum ReconfigError {
    /// The partition plan itself is invalid.
    Plan(PlanError),
    /// The target GPU is quarantined/fenced; reconfiguring a fenced
    /// device would race its recovery path.
    GpuFenced(u32),
    /// A victim worker is in a state that cannot be cleanly restarted
    /// (currently: `Crashed` — its watchdog kill is still in flight).
    WorkerUnhealthy {
        /// The offending worker id.
        worker: usize,
    },
    /// A staged drain/transaction is already active on this GPU.
    Busy(u32),
}

impl From<PlanError> for ReconfigError {
    fn from(e: PlanError) -> Self {
        ReconfigError::Plan(e)
    }
}

impl std::fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconfigError::Plan(e) => write!(f, "invalid plan: {e}"),
            ReconfigError::GpuFenced(g) => write!(f, "GPU {g} is fenced/quarantined"),
            ReconfigError::WorkerUnhealthy { worker } => {
                write!(f, "worker {worker} is crashed; let recovery finish first")
            }
            ReconfigError::Busy(g) => write!(f, "a reconfiguration is already draining GPU {g}"),
        }
    }
}

impl std::error::Error for ReconfigError {}

/// What a reconfiguration did (timestamps let callers measure downtime).
#[derive(Debug, Clone, Serialize)]
pub struct ReconfigReport {
    /// GPU index.
    pub gpu: u32,
    /// Wall-clock start (virtual).
    pub initiated_at: SimTime,
    /// Workers killed and respawned.
    pub workers_restarted: Vec<usize>,
    /// Whether a GPU reset was required (MIG path).
    pub gpu_reset: bool,
    /// New per-worker bindings.
    pub new_specs: Vec<AcceleratorSpec>,
}

/// Analytic cost of one MPS resize for a tenant whose model image is
/// `model_bytes` on `spec` (§6): process restart (function init + CUDA
/// context) plus either a full weight reload or a §7 cache re-bind.
pub fn estimate_mps_resize_cost(
    spec: &parfait_gpu::GpuSpec,
    cold: &parfait_gpu::context::ColdStartModel,
    model_bytes: u64,
    weight_cache_hit: bool,
) -> SimDuration {
    let b = if weight_cache_hit {
        cold.mean_with_cache_hit(Some(spec))
    } else {
        cold.mean(Some(spec), model_bytes)
    };
    b.total()
}

/// Analytic cost of one MIG reconfiguration (§6): GPU reset plus a full
/// tenant restart. Restarts proceed in parallel across tenants, each
/// reloading its own weights, so the outage is reset + one cold start —
/// and the reset wipes the §7 weight cache, so there are no cache hits.
pub fn estimate_mig_reconfig_cost(
    spec: &parfait_gpu::GpuSpec,
    cold: &parfait_gpu::context::ColdStartModel,
    model_bytes: u64,
) -> SimDuration {
    MIG_RESET_TIME + cold.mean(Some(spec), model_bytes).total()
}

/// Workers currently bound to a GPU (any state but Dead).
pub fn workers_on_gpu(world: &FaasWorld, gpu: u32) -> Vec<usize> {
    world
        .workers
        .iter()
        .filter(|w| {
            w.state != WorkerState::Dead
                && match &w.accel {
                    Some(AcceleratorSpec::Gpu(g))
                    | Some(AcceleratorSpec::GpuPercentage(g, _))
                    | Some(AcceleratorSpec::VgpuSlot(g, _)) => *g == gpu,
                    Some(AcceleratorSpec::Mig(uuid)) => {
                        world.fleet.device(GpuId(gpu)).mig.by_uuid(uuid).is_some()
                    }
                    None => false,
                }
        })
        .map(|w| w.id)
        .collect()
}

/// Common refusals shared by every reconfiguration entry point: never
/// touch a fenced device, never race an active drain, and (for the
/// immediate paths) never restart a worker whose crash is still being
/// detected.
fn check_target(
    world: &FaasWorld,
    gpu: u32,
    victims: &[usize],
    refuse_crashed: bool,
) -> Result<(), ReconfigError> {
    if gpu_quarantined(world, GpuId(gpu)) {
        return Err(ReconfigError::GpuFenced(gpu));
    }
    if world.reconfig.drain_active(gpu) {
        return Err(ReconfigError::Busy(gpu));
    }
    if refuse_crashed {
        for &wid in victims {
            if world.workers[wid].state == WorkerState::Crashed {
                return Err(ReconfigError::WorkerUnhealthy { worker: wid });
            }
        }
    }
    Ok(())
}

/// Resize MPS partitions: kill each worker on `gpu` and respawn it with
/// the new percentage. The device stays in `MpsPartitioned` mode and
/// other GPUs are untouched — but each worker pays a §6 restart.
///
/// Refuses fenced GPUs, crashed victims, and GPUs mid-drain; use
/// [`begin_resize_mps`] for the graceful staged path.
pub fn resize_mps(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    gpu: u32,
    new_percentages: &[u32],
) -> Result<ReconfigReport, ReconfigError> {
    let victims = workers_on_gpu(world, gpu);
    validate_mps(&victims, new_percentages)?;
    check_target(world, gpu, &victims, true)?;
    let initiated_at = eng.now();
    let mut new_specs = Vec::new();
    for (&wid, &pct) in victims.iter().zip(new_percentages) {
        // §6: the env var is read at process start — restart required.
        kill_worker(world, eng, wid, "MPS resize");
        let spec = AcceleratorSpec::GpuPercentage(gpu, pct);
        new_specs.push(spec.clone());
        respawn_worker(world, eng, wid, Some(spec)).expect("worker was just killed");
    }
    Ok(ReconfigReport {
        gpu,
        initiated_at,
        workers_restarted: victims,
        gpu_reset: false,
        new_specs,
    })
}

fn validate_mps(victims: &[usize], new_percentages: &[u32]) -> Result<(), ReconfigError> {
    if victims.len() != new_percentages.len() {
        return Err(PlanError::WeightLengthMismatch.into());
    }
    for &p in new_percentages {
        if !(1..=100).contains(&p) {
            return Err(PlanError::BadPercentage(p).into());
        }
    }
    Ok(())
}

/// Reconfigure MIG to `k` equal instances: shut down *every* application
/// on the GPU, reset it (destroying instances, wiping memory and the
/// weight cache), re-create instances, and respawn the workers bound to
/// the new UUIDs. Worker respawn is delayed by [`MIG_RESET_TIME`].
///
/// Refuses fenced GPUs, crashed victims, and GPUs mid-drain; use
/// [`begin_reconfigure_mig`] for the graceful staged path.
pub fn reconfigure_mig_equal(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    gpu: u32,
    k: usize,
) -> Result<ReconfigReport, ReconfigError> {
    let victims = workers_on_gpu(world, gpu);
    if victims.len() != k {
        return Err(PlanError::WeightLengthMismatch.into());
    }
    check_target(world, gpu, &victims, true)?;
    let initiated_at = eng.now();
    for &wid in &victims {
        kill_worker(world, eng, wid, "MIG reconfiguration");
    }
    // Reset: drops contexts, allocations, instances — and the weight
    // cache contents on this GPU.
    let now = eng.now();
    world.fleet.device_mut(GpuId(gpu)).reset(now);
    world.weight_cache.clear_gpu(gpu);
    let gpu_spec = world.fleet.device(GpuId(gpu)).spec.clone();
    let p: PartitionPlan = plan(&gpu_spec, gpu, k, &Strategy::MigEqual)?;
    // The reset takes 1-2 s before instances exist; model it by making
    // the device unusable and respawning the workers after the delay.
    let new_specs = apply_plan(&mut world.fleet, &p)?;
    let pairs: Vec<(usize, AcceleratorSpec)> = victims
        .iter()
        .copied()
        .zip(new_specs.iter().cloned())
        .collect();
    eng.schedule_in(MIG_RESET_TIME, move |w: &mut FaasWorld, e| {
        for (wid, spec) in pairs {
            respawn_worker(w, e, wid, Some(spec)).expect("worker was just killed");
        }
    });
    Ok(ReconfigReport {
        gpu,
        initiated_at,
        workers_restarted: victims,
        gpu_reset: true,
        new_specs,
    })
}

/// Switch a GPU's sharing strategy wholesale (e.g. time-sharing → MPS):
/// kill residents, change mode, respawn with the plan's bindings.
///
/// Refuses fenced GPUs, crashed victims, and GPUs mid-drain.
pub fn switch_strategy(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    gpu: u32,
    strategy: &Strategy,
) -> Result<ReconfigReport, ReconfigError> {
    let victims = workers_on_gpu(world, gpu);
    check_target(world, gpu, &victims, true)?;
    let initiated_at = eng.now();
    for &wid in &victims {
        kill_worker(world, eng, wid, "strategy switch");
    }
    let now = eng.now();
    world.fleet.device_mut(GpuId(gpu)).reset(now);
    world.weight_cache.clear_gpu(gpu);
    let gpu_spec = world.fleet.device(GpuId(gpu)).spec.clone();
    let p = plan(&gpu_spec, gpu, victims.len(), strategy)?;
    let needs_reset = matches!(p.mode, DeviceMode::Mig);
    let new_specs = apply_plan(&mut world.fleet, &p)?;
    if needs_reset {
        let pairs: Vec<(usize, AcceleratorSpec)> = victims
            .iter()
            .copied()
            .zip(new_specs.iter().cloned())
            .collect();
        eng.schedule_in(MIG_RESET_TIME, move |w: &mut FaasWorld, e| {
            for (wid, spec) in pairs {
                respawn_worker(w, e, wid, Some(spec)).expect("worker was just killed");
            }
        });
    } else {
        for (&wid, spec) in victims.iter().zip(&new_specs) {
            respawn_worker(world, eng, wid, Some(spec.clone())).expect("worker was just killed");
        }
    }
    Ok(ReconfigReport {
        gpu,
        initiated_at,
        workers_restarted: victims,
        gpu_reset: needs_reset,
        new_specs,
    })
}

/// Staged MPS resize: drain the GPU's workers (DESIGN.md §11), then run
/// the resize as a transaction. Returns as soon as the drain is started;
/// the commit/abort outcome lands in `world.reconfig.stats` and the
/// monitoring fault log.
///
/// Unlike [`resize_mps`], crashed victims are accepted — the drain waits
/// for the watchdog (or the drain timeout) to resolve them.
pub fn begin_resize_mps(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    gpu: u32,
    new_percentages: Vec<u32>,
) -> Result<(), ReconfigError> {
    let victims = workers_on_gpu(world, gpu);
    validate_mps(&victims, &new_percentages)?;
    check_target(world, gpu, &victims, false)?;
    let members = victims.clone();
    begin_drain(
        world,
        eng,
        gpu,
        members,
        Box::new(move |w, e, _outcome| commit_mps(w, e, gpu, victims, new_percentages)),
    );
    Ok(())
}

/// The MPS transaction body, run at drain completion.
fn commit_mps(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    gpu: u32,
    victims: Vec<usize>,
    pcts: Vec<u32>,
) {
    let now = eng.now();
    if gpu_quarantined(world, GpuId(gpu)) {
        // The device got fenced mid-drain (host outage, rack power, …).
        // Abort: workers keep their previous shares — the ones the fence
        // killed are parked and re-admission respawns them unchanged.
        world.reconfig.stats.txns_aborted += 1;
        world.monitor.fault_event(
            now,
            FaultPhase::Detected,
            "reconfig-abort",
            Some(gpu),
            None,
            "GPU fenced mid-drain; workers keep previous MPS shares",
        );
        return;
    }
    if reconfig_commit_fails(world, gpu) {
        // Failed MPS respawn: roll back to the last known-good shares by
        // restarting victims with their old specs through the *budgeted*
        // recovery path — a failed reconfig spends restart budget.
        world.reconfig.stats.txns_failed += 1;
        world.reconfig.stats.rollbacks += 1;
        world.monitor.fault_event(
            now,
            FaultPhase::Detected,
            "reconfig-fail",
            Some(gpu),
            None,
            "MPS respawn failed; rolling back to previous shares",
        );
        for &wid in &victims {
            kill_worker(world, eng, wid, "MPS resize failed");
            auto_respawn(world, eng, wid);
        }
        return;
    }
    for (&wid, &pct) in victims.iter().zip(&pcts) {
        kill_worker(world, eng, wid, "MPS resize");
        let spec = AcceleratorSpec::GpuPercentage(gpu, pct);
        respawn_worker(world, eng, wid, Some(spec)).expect("worker was just killed");
    }
    world.reconfig.stats.txns_committed += 1;
    world.monitor.fault_event(
        now,
        FaultPhase::Recovered,
        "reconfig-commit",
        Some(gpu),
        None,
        format!("MPS shares now {pcts:?}"),
    );
}

/// Staged MIG re-slice to `k` equal instances: drain, then reset +
/// re-partition as a transaction. See [`begin_resize_mps`] for the
/// drain/commit contract; the failure path here quarantines the device
/// (a botched re-slice leaves it unusable until re-admission).
pub fn begin_reconfigure_mig(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    gpu: u32,
    k: usize,
) -> Result<(), ReconfigError> {
    let victims = workers_on_gpu(world, gpu);
    if victims.len() != k {
        return Err(PlanError::WeightLengthMismatch.into());
    }
    // Validate the plan shape up front (pure); the commit re-plans
    // against the reset device.
    let gpu_spec = world.fleet.device(GpuId(gpu)).spec.clone();
    plan(&gpu_spec, gpu, k, &Strategy::MigEqual)?;
    check_target(world, gpu, &victims, false)?;
    begin_drain(
        world,
        eng,
        gpu,
        victims.clone(),
        Box::new(move |w, e, _outcome| commit_mig(w, e, gpu, k, victims)),
    );
    Ok(())
}

/// The MIG transaction body, run at drain completion.
fn commit_mig(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    gpu: u32,
    k: usize,
    victims: Vec<usize>,
) {
    let now = eng.now();
    if gpu_quarantined(world, GpuId(gpu)) {
        world.reconfig.stats.txns_aborted += 1;
        world.monitor.fault_event(
            now,
            FaultPhase::Detected,
            "reconfig-abort",
            Some(gpu),
            None,
            "GPU fenced mid-drain; MIG layout unchanged",
        );
        return;
    }
    for &wid in &victims {
        kill_worker(world, eng, wid, "MIG reconfiguration");
    }
    world.fleet.device_mut(GpuId(gpu)).reset(now);
    world.weight_cache.clear_gpu(gpu);
    let gpu_spec = world.fleet.device(GpuId(gpu)).spec.clone();
    let p = plan(&gpu_spec, gpu, k, &Strategy::MigEqual).expect("plan validated at begin");
    let new_specs = apply_plan(&mut world.fleet, &p).expect("re-slice of a reset device");
    // Bind the new instance UUIDs immediately (the old ones died with the
    // reset): if the device gets fenced during the reset window, the
    // fence can resolve each worker's target GPU and park it.
    for (&wid, spec) in victims.iter().zip(&new_specs) {
        world.workers[wid].accel = Some(spec.clone());
    }
    if reconfig_commit_fails(world, gpu) {
        // Failed re-slice: the device is left in a degraded state.
        // Quarantine it — the victims (all Dead) are parked against the
        // fence and re-admission brings them back on restart budget.
        world.reconfig.stats.txns_failed += 1;
        world.monitor.fault_event(
            now,
            FaultPhase::Detected,
            "reconfig-fail",
            Some(gpu),
            None,
            "MIG re-slice failed; device quarantined for recovery",
        );
        quarantine_gpu(world, eng, GpuId(gpu), "MIG re-slice failed");
        return;
    }
    world.reconfig.stats.txns_committed += 1;
    world.monitor.fault_event(
        now,
        FaultPhase::Recovered,
        "reconfig-commit",
        Some(gpu),
        None,
        format!("re-sliced to {k} equal MIG instances"),
    );
    eng.schedule_in(MIG_RESET_TIME, move |w: &mut FaasWorld, e| {
        for &wid in &victims {
            if w.workers[wid].state != WorkerState::Dead {
                continue; // already revived (e.g. re-admitted after a fence)
            }
            if gpu_quarantined(w, GpuId(gpu)) {
                continue; // fenced during the reset window; parked for re-admission
            }
            respawn_worker(w, e, wid, None).expect("worker is dead");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfait_gpu::context::ColdStartModel;
    use parfait_gpu::GpuSpec;

    #[test]
    fn resize_estimates_match_paper_bands() {
        let spec = GpuSpec::a100_80gb();
        let cold = ColdStartModel::default();
        let fp16_7b = 7_000_000_000u64 * 2;
        let stock = estimate_mps_resize_cost(&spec, &cold, fp16_7b, false).as_secs_f64();
        let cached = estimate_mps_resize_cost(&spec, &cold, fp16_7b, true).as_secs_f64();
        // §6: restart with reload lands in the ~8-20 s band; the cache
        // collapses it to process startup (~2.5 s).
        assert!((7.0..=20.0).contains(&stock), "stock {stock}");
        assert!(cached < 3.5, "cached {cached}");
        assert!(stock / cached > 2.5);
    }

    #[test]
    fn mig_estimate_exceeds_mps_by_the_reset() {
        let spec = GpuSpec::a100_80gb();
        let cold = ColdStartModel::default();
        let fp16_7b = 7_000_000_000u64 * 2;
        let mps = estimate_mps_resize_cost(&spec, &cold, fp16_7b, false);
        let mig = estimate_mig_reconfig_cost(&spec, &cold, fp16_7b);
        assert_eq!(mig, MIG_RESET_TIME + mps, "MIG = reset + full restart");
    }
}
