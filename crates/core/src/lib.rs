#![warn(missing_docs)]

//! # parfait-core
//!
//! The paper's contribution: **fine-grained accelerator partitioning for
//! a FaaS platform** (Dhakal et al., SC-W 2023), as a library over the
//! `parfait-faas` runtime and `parfait-gpu` substrate.
//!
//! * [`accel`] — the enhanced `available_accelerators` / `gpu_percentage`
//!   configuration surface of §4 (Listings 2–3): repeated GPU ids,
//!   per-entry MPS percentages, MIG UUIDs.
//! * [`planner`] — partition-plan synthesis (equal/weighted MPS splits,
//!   §5.2's MIG profile mapping, vGPU slots, multi-GPU fleets) and
//!   device application.
//! * [`advisor`] — Table 1's "no one-size-fits-all" navigation as a
//!   decision procedure: tenancy requirements → strategy + rationale.
//! * [`autoscale`] — §7's "change GPU resources depending on demand": a
//!   backlog-proportional MPS repartitioning controller over
//!   [`reconfig`], designed to pair with the [`weightcache`].
//! * [`reconfig`] — the §6 reconfiguration paths: MPS resize by process
//!   restart; MIG resize by GPU reset; strategy switches.
//! * [`rightsize`] — §7 "understanding GPU resource requirement": knee
//!   detection over latency profiles → MPS % / MIG profile
//!   recommendations.
//! * [`weightcache`] — §7 "re-configuring GPU resources faster": policy
//!   over the GPU-resident model weight cache.
//! * [`metrics`] — figure-oriented reductions (makespan, latency,
//!   throughput, utilization).

pub mod accel;
pub mod advisor;
pub mod autoscale;
pub mod metrics;
pub mod planner;
pub mod reconfig;
pub mod rightsize;
pub mod weightcache;

pub use accel::{parse_accelerators, parse_entry, AccelParseError};
pub use advisor::{recommend_strategy, StrategyAdvice, TenancyRequirements};
pub use autoscale::{
    demand_scores, enable_autoscaler, enable_slo_autoscaler, proportional_split, AutoscaleEvent,
    AutoscalePolicy, GpuTenancy, SloAction, SloDecision, SloPolicy,
};
pub use planner::{
    apply_fleet, apply_plan, equal_mig_profile, plan, plan_fleet, PartitionPlan, PlanError,
    Strategy,
};
pub use reconfig::{
    begin_reconfigure_mig, begin_resize_mps, estimate_mig_reconfig_cost, estimate_mps_resize_cost,
    reconfigure_mig_equal, resize_mps, switch_strategy, ReconfigError, ReconfigReport,
    MIG_RESET_TIME,
};
pub use rightsize::{knee, profile, recommend, ProfilePoint, Recommendation};
