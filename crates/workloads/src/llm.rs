//! LLaMa2 inference cost model (§3.2, Figs. 2/4/5 of the paper).
//!
//! ## Calibration
//!
//! The paper runs Meta's reference fp32 PyTorch implementation, which is
//! far from roofline: its own measurements are ~180 s per 20-word
//! completion on CPU and ~40× faster on an A100 (§3.4), i.e. ≈4.5 s on
//! the GPU, and latency stops improving beyond ~20 SMs (Fig. 2). We encode
//! that operating point directly:
//!
//! * a decode step's GPU work is `2·params` FLOPs at a calibrated
//!   [`LlmSpec::kernel_efficiency`] (≈3 % of peak — eager fp32, batch 1),
//!   with a grid that saturates ~20 SMs;
//! * each decode step also spends [`LlmSpec::host_per_token`] on the CPU
//!   (Python sampling loop, kernel-launch serialization) — time another
//!   co-resident model can spend on the GPU, which is the mechanistic
//!   reason multiplexing wins in Figs. 4/5;
//! * prefill processes the whole prompt in one much wider launch;
//! * memory footprint = weights + KV cache at `max_seq` + workspace,
//!   which caps an 80 GB A100 at exactly four 7B instances (§5.2).

use parfait_faas::{ModelProfile, TaskBody, TaskCtx, TaskStep};
use parfait_gpu::{GpuSpec, KernelDesc, GIB};
use parfait_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Architecture + deployment parameters of one LLM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LlmSpec {
    /// Name, e.g. `"llama2-7b"`.
    pub name: &'static str,
    /// Parameter count.
    pub params: f64,
    /// Transformer layers.
    pub layers: u32,
    /// Hidden dimension.
    pub d_model: u32,
    /// Bytes per weight/KV element (4 = fp32, 2 = fp16).
    pub dtype_bytes: u64,
    /// Longest supported sequence (KV cache is reserved for it).
    pub max_seq: u32,
    /// Tensor-parallel degree (13B runs on 2 GPUs in the paper's Fig. 2).
    pub tensor_parallel: u32,
    /// Achieved fraction of peak FLOPs for decode kernels.
    pub kernel_efficiency: f64,
    /// Host time per generated token (sampling loop, launch overhead).
    pub host_per_token: SimDuration,
    /// Host time per completion (tokenize, detokenize, RPC).
    pub host_per_completion: SimDuration,
    /// Thread blocks of a decode step's fused launch (sets wave
    /// granularity on small partitions).
    pub decode_blocks: u32,
    /// Concurrency ceiling of a decode step in SMs — the Fig. 2 knee.
    pub decode_max_sms: u32,
    /// HBM-bandwidth fraction a decode step consumes at full rate.
    pub decode_mem_intensity: f64,
}

impl LlmSpec {
    /// LLaMa2-7B.
    pub fn llama2_7b(dtype_bytes: u64) -> Self {
        LlmSpec {
            name: "llama2-7b",
            params: 6.74e9,
            layers: 32,
            d_model: 4096,
            dtype_bytes,
            max_seq: 2048,
            tensor_parallel: 1,
            kernel_efficiency: 0.030,
            host_per_token: SimDuration::from_millis(60),
            host_per_completion: SimDuration::from_millis(500),
            decode_blocks: 100,
            decode_max_sms: 20,
            decode_mem_intensity: 0.38,
        }
    }

    /// LLaMa2-13B (2-way tensor parallel on 40 GB parts, as in Fig. 2).
    pub fn llama2_13b(dtype_bytes: u64) -> Self {
        LlmSpec {
            name: "llama2-13b",
            params: 13.0e9,
            layers: 40,
            d_model: 5120,
            dtype_bytes,
            max_seq: 2048,
            tensor_parallel: 2,
            kernel_efficiency: 0.030,
            host_per_token: SimDuration::from_millis(75),
            host_per_completion: SimDuration::from_millis(600),
            decode_blocks: 100,
            decode_max_sms: 20,
            decode_mem_intensity: 0.38,
        }
    }

    /// LLaMa2-70B (8-way tensor parallel; catalog completeness).
    pub fn llama2_70b(dtype_bytes: u64) -> Self {
        LlmSpec {
            name: "llama2-70b",
            params: 70.0e9,
            layers: 80,
            d_model: 8192,
            dtype_bytes,
            max_seq: 4096,
            tensor_parallel: 8,
            kernel_efficiency: 0.030,
            host_per_token: SimDuration::from_millis(90),
            host_per_completion: SimDuration::from_millis(800),
            decode_blocks: 120,
            decode_max_sms: 24,
            decode_mem_intensity: 0.45,
        }
    }

    /// Weight bytes per GPU (tensor parallelism shards them).
    pub fn weight_bytes(&self) -> u64 {
        (self.params as u64 * self.dtype_bytes) / self.tensor_parallel as u64
    }

    /// KV-cache bytes per token per GPU (K and V for every layer).
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.layers as u64 * self.d_model as u64 * self.dtype_bytes
            / self.tensor_parallel as u64
    }

    /// Resident footprint per GPU: weights + KV at `max_seq` + workspace
    /// (activations, cuBLAS workspaces, CUDA context, allocator slack —
    /// sized so that exactly four fp16 7B instances fill an 80 GB A100,
    /// matching §5.2).
    pub fn footprint_bytes(&self) -> u64 {
        let workspace = 3 * GIB;
        self.weight_bytes() + self.kv_bytes_per_token() * self.max_seq as u64 + workspace
    }

    /// The [`ModelProfile`] handed to the FaaS worker.
    pub fn model_profile(&self) -> ModelProfile {
        // Stable id from the name + dtype.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.name.bytes().chain(self.dtype_bytes.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        ModelProfile {
            id: h,
            bytes: self.footprint_bytes(),
            shared_bytes: self.weight_bytes(),
        }
    }

    /// FLOPs of one decode step (per GPU under tensor parallelism).
    pub fn decode_flops(&self) -> f64 {
        2.0 * self.params / self.tensor_parallel as f64
    }

    /// GPU work of one decode step in SM-seconds on `spec`.
    pub fn decode_work(&self, spec: &GpuSpec) -> f64 {
        spec.flops_to_sm_seconds(self.decode_flops()) / self.kernel_efficiency
    }

    /// The decode kernel.
    pub fn decode_kernel(&self, spec: &GpuSpec) -> KernelDesc {
        KernelDesc::new(
            "llm.decode",
            self.decode_work(spec),
            self.decode_blocks,
            self.decode_max_sms,
            self.decode_mem_intensity,
        )
    }

    /// The prefill kernel for a `prompt_tokens`-long prompt: all tokens in
    /// one wide launch (prefill parallelizes across tokens, so it *can*
    /// fill the GPU — unlike decode).
    pub fn prefill_kernel(&self, spec: &GpuSpec, prompt_tokens: u32) -> KernelDesc {
        // Prefill reuses activations; ~0.5× decode cost per token.
        let work = self.decode_work(spec) * prompt_tokens as f64 * 0.5;
        let blocks = self.decode_blocks * prompt_tokens.max(1);
        KernelDesc::new("llm.prefill", work, blocks, blocks, 0.30)
    }

    /// End-to-end GPU+host time of one completion on a dedicated
    /// allocation of `sms` SMs — the Fig. 2 curve, analytically.
    pub fn solo_completion_seconds(
        &self,
        spec: &GpuSpec,
        sms: f64,
        prompt_tokens: u32,
        new_tokens: u32,
    ) -> f64 {
        let pre = self.prefill_kernel(spec, prompt_tokens).solo_runtime(sms);
        let dec = self.decode_kernel(spec).solo_runtime(sms);
        self.host_per_completion.as_secs_f64()
            + pre
            + new_tokens as f64
                * (self.host_per_token.as_secs_f64() + dec + self.allreduce_seconds())
    }

    /// Per-token tensor-parallel allreduce cost (zero when TP = 1).
    pub fn allreduce_seconds(&self) -> f64 {
        if self.tensor_parallel <= 1 {
            0.0
        } else {
            // NVLink latency + Python sync per decode step.
            0.004 * (self.tensor_parallel as f64).log2()
        }
    }

    /// CPU-only inference time for one completion — the paper quotes 180 s
    /// (7B) / 360 s (13B), "approximately 40 times slower" than the GPU.
    pub fn cpu_completion_seconds(&self, spec: &GpuSpec, prompt: u32, new_tokens: u32) -> f64 {
        40.0 * self.solo_completion_seconds(spec, spec.sms as f64, prompt, new_tokens)
    }
}

/// Request-length distribution for a deployment use case.
///
/// §3.2: LLaMa2 *text* handles single request–response exchanges while
/// LLaMa2-*Chat* targets dialogues — "the difference is crucial to the
/// expected runtime behavior due to the expected varying length of
/// interaction time and input". Prompt and response lengths are lognormal
/// (dialogue traffic is heavy-tailed).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestProfile {
    /// Use-case label.
    pub name: &'static str,
    /// Mean prompt tokens.
    pub prompt_mean: f64,
    /// Lognormal sigma of the prompt length.
    pub prompt_sigma: f64,
    /// Mean generated tokens.
    pub gen_mean: f64,
    /// Lognormal sigma of the generated length.
    pub gen_sigma: f64,
    /// Hard cap on either length (the model's context-window share).
    pub max_tokens: u32,
}

impl RequestProfile {
    /// Single request–response text completion (the paper's evaluation
    /// workload: ~20-word outputs).
    pub fn text() -> Self {
        RequestProfile {
            name: "text",
            prompt_mean: 16.0,
            prompt_sigma: 0.3,
            gen_mean: 27.0,
            gen_sigma: 0.2,
            max_tokens: 512,
        }
    }

    /// Dialogue traffic for LLaMa2-Chat: growing multi-turn context and
    /// longer, more variable responses.
    pub fn chat() -> Self {
        RequestProfile {
            name: "chat",
            prompt_mean: 96.0,
            prompt_sigma: 0.6,
            gen_mean: 80.0,
            gen_sigma: 0.5,
            max_tokens: 1024,
        }
    }

    /// Sample a `(prompt_tokens, new_tokens)` pair.
    pub fn sample(&self, rng: &mut parfait_simcore::SimRng) -> (u32, u32) {
        let draw = |rng: &mut parfait_simcore::SimRng, mean: f64, sigma: f64| -> u32 {
            let mu = mean.ln() - sigma * sigma / 2.0;
            (rng.lognormal(mu, sigma).round() as u32).clamp(1, self.max_tokens)
        };
        (
            draw(rng, self.prompt_mean, self.prompt_sigma),
            draw(rng, self.gen_mean, self.gen_sigma),
        )
    }
}

/// A text-completion task body: prefill, then `new_tokens` × (host +
/// decode kernel), with per-completion host overhead.
pub struct CompletionBody {
    spec: LlmSpec,
    gpu: GpuSpec,
    prompt_tokens: u32,
    new_tokens: u32,
    tokens_left: u32,
    stage: Stage,
}

enum Stage {
    Start,
    Prefill,
    TokenHost,
    TokenKernel,
    Finish,
}

impl CompletionBody {
    /// One completion of `new_tokens` after a `prompt_tokens` prompt.
    pub fn new(spec: LlmSpec, gpu: GpuSpec, prompt_tokens: u32, new_tokens: u32) -> Self {
        CompletionBody {
            spec,
            gpu,
            prompt_tokens,
            new_tokens,
            tokens_left: new_tokens,
            stage: Stage::Start,
        }
    }

    /// The paper's canonical "20-word sentence" request: ~16-token prompt,
    /// ~27 generated tokens.
    pub fn paper_request(spec: LlmSpec, gpu: GpuSpec) -> Self {
        CompletionBody::new(spec, gpu, 16, 27)
    }

    /// A request with lengths drawn from a use-case profile (text vs
    /// chat deployments, §3.2).
    pub fn sampled(
        spec: LlmSpec,
        gpu: GpuSpec,
        profile: &RequestProfile,
        rng: &mut parfait_simcore::SimRng,
    ) -> Self {
        let (prompt, gen) = profile.sample(rng);
        CompletionBody::new(spec, gpu, prompt, gen)
    }
}

impl TaskBody for CompletionBody {
    fn model(&self) -> Option<ModelProfile> {
        Some(self.spec.model_profile())
    }

    fn checkpointable(&self) -> bool {
        // Prompt and token budget are fixed at construction; the KV
        // cache a snapshot would carry is the model's private state.
        true
    }

    fn checkpoint_bytes(&self) -> u64 {
        // The durable session state is the KV cache grown so far:
        // prompt tokens plus every decoded token. Activation scratch
        // (the rest of the model's private footprint) is recomputed on
        // resume and never serialized.
        let decoded = self.new_tokens - self.tokens_left;
        self.spec.kv_bytes_per_token() * (self.prompt_tokens + decoded) as u64
    }

    fn next(&mut self, _ctx: &mut TaskCtx<'_>) -> TaskStep {
        loop {
            match self.stage {
                Stage::Start => {
                    self.stage = Stage::Prefill;
                    return TaskStep::Cpu(self.spec.host_per_completion);
                }
                Stage::Prefill => {
                    self.stage = Stage::TokenHost;
                    return TaskStep::Gpu(self.spec.prefill_kernel(&self.gpu, self.prompt_tokens));
                }
                Stage::TokenHost => {
                    if self.tokens_left == 0 {
                        self.stage = Stage::Finish;
                        continue;
                    }
                    self.stage = Stage::TokenKernel;
                    let host = self.spec.host_per_token
                        + SimDuration::from_secs_f64(self.spec.allreduce_seconds());
                    return TaskStep::Cpu(host);
                }
                Stage::TokenKernel => {
                    self.tokens_left -= 1;
                    self.stage = Stage::TokenHost;
                    return TaskStep::Gpu(self.spec.decode_kernel(&self.gpu));
                }
                Stage::Finish => return TaskStep::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfait_simcore::SimRng;

    #[test]
    fn footprints_match_paper_constraints() {
        // fp16 7B ≈ 16.6 GiB ⇒ exactly 4 fit in 80 GiB (§5.2).
        let m = LlmSpec::llama2_7b(2);
        let fp = m.footprint_bytes() as f64 / GIB as f64;
        assert!((15.5..18.5).contains(&fp), "7B fp16 footprint {fp} GiB");
        assert_eq!((80.0 / fp) as u32, 4, "exactly four instances fit");

        // fp32 7B fits one 40 GB A100; fp32 13B does not (needs 2 GPUs).
        let m7_32 = LlmSpec::llama2_7b(4);
        assert!(m7_32.footprint_bytes() < 40 * GIB);
        let mut m13_32 = LlmSpec::llama2_13b(4);
        m13_32.tensor_parallel = 1;
        assert!(m13_32.footprint_bytes() > 40 * GIB, "13B fp32 needs 2 GPUs");
        // Sharded 2-way it fits per GPU.
        let m13 = LlmSpec::llama2_13b(4);
        assert!(m13.footprint_bytes() < 40 * GIB);
    }

    #[test]
    fn gpu_completion_near_paper_speed() {
        // §3.4: CPU ≈ 180 s for 7B and GPU ≈ 40× faster ⇒ ~4.5 s.
        let m = LlmSpec::llama2_7b(4);
        let spec = GpuSpec::a100_40gb();
        let t = m.solo_completion_seconds(&spec, 108.0, 16, 27);
        assert!((3.5..6.5).contains(&t), "GPU completion {t}s");
        let cpu = m.cpu_completion_seconds(&spec, 16, 27);
        assert!((140.0..260.0).contains(&cpu), "CPU completion {cpu}s");
    }

    #[test]
    fn fig2_knee_near_20_sms() {
        // Latency falls steeply up to ~20 SMs and is nearly flat beyond.
        let m = LlmSpec::llama2_7b(4);
        let spec = GpuSpec::a100_40gb();
        let t5 = m.solo_completion_seconds(&spec, 5.0, 16, 27);
        let t20 = m.solo_completion_seconds(&spec, 20.0, 16, 27);
        let t108 = m.solo_completion_seconds(&spec, 108.0, 16, 27);
        assert!(t5 / t20 > 2.0, "steep region: t5={t5} t20={t20}");
        assert!(t20 / t108 < 1.25, "flat region: t20={t20} t108={t108}");
    }

    #[test]
    fn monotone_latency_in_sms() {
        let m = LlmSpec::llama2_7b(4);
        let spec = GpuSpec::a100_40gb();
        let mut prev = f64::INFINITY;
        for sms in (5..=108).step_by(1) {
            let t = m.solo_completion_seconds(&spec, sms as f64, 16, 27);
            assert!(t <= prev + 1e-9, "latency rose at {sms} SMs");
            prev = t;
        }
    }

    #[test]
    fn thirteen_b_slower_than_seven_b() {
        let spec = GpuSpec::a100_40gb();
        let t7 = LlmSpec::llama2_7b(4).solo_completion_seconds(&spec, 108.0, 16, 27);
        let t13 = LlmSpec::llama2_13b(4).solo_completion_seconds(&spec, 108.0, 16, 27);
        assert!(t13 > t7, "t13={t13} t7={t7}");
        // 2-way TP shards the per-GPU work, so < 2× despite 1.9× params.
        assert!(t13 / t7 < 1.9);
    }

    #[test]
    fn completion_body_step_sequence() {
        let spec = GpuSpec::a100_80gb();
        let mut b = CompletionBody::new(LlmSpec::llama2_7b(2), spec, 16, 3);
        let mut rng = SimRng::new(0);
        let mut seq = Vec::new();
        for _ in 0..64 {
            let mut ctx = TaskCtx {
                rng: &mut rng,
                now: parfait_simcore::SimTime::ZERO,
            };
            match b.next(&mut ctx) {
                TaskStep::Cpu(_) => seq.push('c'),
                TaskStep::Gpu(k) => seq.push(if k.name.contains("prefill") { 'P' } else { 'g' }),
                TaskStep::Done => {
                    seq.push('.');
                    break;
                }
                _ => seq.push('?'),
            }
        }
        let s: String = seq.into_iter().collect();
        assert_eq!(s, "cPcgcgcg.");
        assert!(b.model().is_some());
    }

    #[test]
    fn kv_cache_math() {
        let m = LlmSpec::llama2_7b(2);
        // 2 × 32 layers × 4096 dim × 2 B = 512 KiB per token.
        assert_eq!(m.kv_bytes_per_token(), 1 << 19);
        let m13 = LlmSpec::llama2_13b(2);
        // Sharded across 2 GPUs.
        assert_eq!(m13.kv_bytes_per_token(), 2 * 40 * 5120 * 2 / 2);
    }

    #[test]
    fn request_profiles_have_paper_shapes() {
        let mut rng = SimRng::new(1);
        let text = RequestProfile::text();
        let chat = RequestProfile::chat();
        let n = 20_000;
        let mean = |p: &RequestProfile, rng: &mut SimRng| -> (f64, f64) {
            let mut sp = 0.0;
            let mut sg = 0.0;
            for _ in 0..n {
                let (a, b) = p.sample(rng);
                sp += a as f64;
                sg += b as f64;
            }
            (sp / n as f64, sg / n as f64)
        };
        let (tp, tg) = mean(&text, &mut rng);
        let (cp, cg) = mean(&chat, &mut rng);
        assert!((tp - 16.0).abs() < 1.0, "text prompt mean {tp}");
        assert!((tg - 27.0).abs() < 1.0, "text gen mean {tg}");
        assert!(cp > 2.0 * tp, "chat prompts much longer: {cp} vs {tp}");
        assert!(cg > 2.0 * tg, "chat responses much longer: {cg} vs {tg}");
    }

    #[test]
    fn sampled_body_uses_profile_lengths() {
        let mut rng = SimRng::new(2);
        let gpu = GpuSpec::a100_80gb();
        let mut b = CompletionBody::sampled(
            LlmSpec::llama2_7b(2),
            gpu,
            &RequestProfile::text(),
            &mut rng,
        );
        let mut gpu_steps = 0;
        for _ in 0..4096 {
            let mut ctx = TaskCtx {
                rng: &mut rng,
                now: parfait_simcore::SimTime::ZERO,
            };
            match b.next(&mut ctx) {
                TaskStep::Gpu(_) => gpu_steps += 1,
                TaskStep::Done => break,
                _ => {}
            }
        }
        // prefill + one decode per sampled token; text ~= 27 ± tail.
        assert!((10..=520).contains(&gpu_steps), "gpu steps {gpu_steps}");
    }

    #[test]
    fn model_profile_ids_distinct() {
        let a = LlmSpec::llama2_7b(2).model_profile();
        let b = LlmSpec::llama2_7b(4).model_profile();
        let c = LlmSpec::llama2_13b(2).model_profile();
        assert_ne!(a.id, b.id);
        assert_ne!(a.id, c.id);
    }
}
