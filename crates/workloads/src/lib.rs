#![warn(missing_docs)]

//! # parfait-workloads
//!
//! Workload models for the PARFAIT reproduction — the applications of the
//! paper's §3:
//!
//! * [`dnn`] — analytic CNN architectures (ResNet-50/101, VGG, AlexNet…)
//!   with per-layer FLOPs (Fig. 1) and kernel lowering.
//! * [`llm`] — a calibrated LLaMa2 inference cost model driving Figs.
//!   2/4/5: prefill + token-by-token decode with host overheads, KV-cache
//!   memory, tensor parallelism.
//! * [`mlp`] — a real dense neural network with backprop (the
//!   molecular-design emulator).
//! * [`molecular`] — the §3.1 active-learning campaign as a FaaS driver
//!   (Fig. 3).
//! * [`trace`] — request-arrival generators.
//! * [`batching`] — dynamic request batching for inference services (the
//!   operator's other lever against §3.4 underutilization).

pub mod batching;
pub mod dnn;
pub mod llm;
pub mod mlp;
pub mod molecular;
pub mod trace;

pub use llm::{CompletionBody, LlmSpec};
pub use mlp::Mlp;
pub use molecular::{Campaign, CampaignConfig, Chemistry, Molecule, Selection};
