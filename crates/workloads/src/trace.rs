//! Request-arrival generators for serverless workload experiments.
//!
//! The paper's §5.2 experiments are closed-loop (each chatbot process
//! issues its next completion when the previous one finishes — that is
//! the task-queue model). Open-loop and bursty traces are provided for
//! the extension experiments and examples.

use parfait_simcore::{SimDuration, SimRng, SimTime};
use serde::Serialize;

/// A generated arrival trace.
#[derive(Debug, Clone, Serialize)]
pub struct Trace {
    /// Arrival instants, non-decreasing.
    pub arrivals: Vec<SimTime>,
}

impl Trace {
    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Mean inter-arrival gap in seconds (0 with fewer than 2 arrivals).
    pub fn mean_gap_secs(&self) -> f64 {
        if self.arrivals.len() < 2 {
            return 0.0;
        }
        let span = self
            .arrivals
            .last()
            .expect("non-empty")
            .duration_since(self.arrivals[0])
            .as_secs_f64();
        span / (self.arrivals.len() - 1) as f64
    }
}

/// Poisson arrivals at `rate_per_sec` until `n` requests are generated.
pub fn poisson(rng: &mut SimRng, rate_per_sec: f64, n: usize) -> Trace {
    assert!(rate_per_sec > 0.0, "rate must be positive");
    let mut t = 0.0;
    let arrivals = (0..n)
        .map(|_| {
            t += rng.exp(1.0 / rate_per_sec);
            SimTime::ZERO + SimDuration::from_secs_f64(t)
        })
        .collect();
    Trace { arrivals }
}

/// Deterministic arrivals every `period`.
pub fn uniform(period: SimDuration, n: usize) -> Trace {
    Trace {
        arrivals: (1..=n as u64).map(|i| SimTime::ZERO + period * i).collect(),
    }
}

/// Bursty on/off arrivals: Poisson at `burst_rate` during `on` windows,
/// silent during `off` windows, until `n` requests exist.
pub fn bursty(
    rng: &mut SimRng,
    burst_rate: f64,
    on: SimDuration,
    off: SimDuration,
    n: usize,
) -> Trace {
    assert!(burst_rate > 0.0, "rate must be positive");
    let mut arrivals = Vec::with_capacity(n);
    let mut window_start = 0.0;
    let (on_s, off_s) = (on.as_secs_f64(), off.as_secs_f64());
    'outer: loop {
        let mut t = window_start;
        loop {
            t += rng.exp(1.0 / burst_rate);
            if t > window_start + on_s {
                break;
            }
            arrivals.push(SimTime::ZERO + SimDuration::from_secs_f64(t));
            if arrivals.len() == n {
                break 'outer;
            }
        }
        window_start += on_s + off_s;
    }
    Trace { arrivals }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_converges() {
        let mut rng = SimRng::new(1);
        let tr = poisson(&mut rng, 4.0, 50_000);
        assert_eq!(tr.len(), 50_000);
        assert!(
            (tr.mean_gap_secs() - 0.25).abs() < 0.01,
            "gap {}",
            tr.mean_gap_secs()
        );
        assert!(tr.arrivals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn uniform_is_regular() {
        let tr = uniform(SimDuration::from_secs(2), 5);
        assert_eq!(tr.len(), 5);
        assert_eq!(tr.arrivals[0], SimTime::from_secs(2));
        assert_eq!(tr.arrivals[4], SimTime::from_secs(10));
        assert_eq!(tr.mean_gap_secs(), 2.0);
    }

    #[test]
    fn bursty_respects_off_windows() {
        let mut rng = SimRng::new(2);
        let on = SimDuration::from_secs(10);
        let off = SimDuration::from_secs(50);
        let tr = bursty(&mut rng, 10.0, on, off, 500);
        assert_eq!(tr.len(), 500);
        // No arrival may land inside an off window.
        for a in &tr.arrivals {
            let s = a.as_secs_f64() % 60.0;
            assert!(s <= 10.0 + 1e-9, "arrival at {s} inside off window");
        }
    }

    #[test]
    fn empty_trace_edge_cases() {
        let tr = uniform(SimDuration::from_secs(1), 0);
        assert!(tr.is_empty());
        assert_eq!(tr.mean_gap_secs(), 0.0);
    }
}
