//! Request-arrival generators for serverless workload experiments.
//!
//! The paper's §5.2 experiments are closed-loop (each chatbot process
//! issues its next completion when the previous one finishes — that is
//! the task-queue model). Open-loop and bursty traces are provided for
//! the extension experiments and examples.

use parfait_simcore::{SimDuration, SimRng, SimTime};
use serde::Serialize;

/// A generated arrival trace.
#[derive(Debug, Clone, Serialize)]
pub struct Trace {
    /// Arrival instants, non-decreasing.
    pub arrivals: Vec<SimTime>,
}

impl Trace {
    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Mean inter-arrival gap in seconds (0 with fewer than 2 arrivals).
    pub fn mean_gap_secs(&self) -> f64 {
        if self.arrivals.len() < 2 {
            return 0.0;
        }
        let span = self
            .arrivals
            .last()
            .expect("non-empty")
            .duration_since(self.arrivals[0])
            .as_secs_f64();
        span / (self.arrivals.len() - 1) as f64
    }
}

/// Poisson arrivals at `rate_per_sec` until `n` requests are generated.
pub fn poisson(rng: &mut SimRng, rate_per_sec: f64, n: usize) -> Trace {
    assert!(rate_per_sec > 0.0, "rate must be positive");
    let mut t = 0.0;
    let arrivals = (0..n)
        .map(|_| {
            t += rng.exp(1.0 / rate_per_sec);
            SimTime::ZERO + SimDuration::from_secs_f64(t)
        })
        .collect();
    Trace { arrivals }
}

/// Deterministic arrivals every `period`.
pub fn uniform(period: SimDuration, n: usize) -> Trace {
    Trace {
        arrivals: (1..=n as u64).map(|i| SimTime::ZERO + period * i).collect(),
    }
}

/// Bursty on/off arrivals: Poisson at `burst_rate` during `on` windows,
/// silent during `off` windows, until `n` requests exist.
pub fn bursty(
    rng: &mut SimRng,
    burst_rate: f64,
    on: SimDuration,
    off: SimDuration,
    n: usize,
) -> Trace {
    assert!(burst_rate > 0.0, "rate must be positive");
    let mut arrivals = Vec::with_capacity(n);
    let mut window_start = 0.0;
    let (on_s, off_s) = (on.as_secs_f64(), off.as_secs_f64());
    'outer: loop {
        let mut t = window_start;
        loop {
            t += rng.exp(1.0 / burst_rate);
            if t > window_start + on_s {
                break;
            }
            arrivals.push(SimTime::ZERO + SimDuration::from_secs_f64(t));
            if arrivals.len() == n {
                break 'outer;
            }
        }
        window_start += on_s + off_s;
    }
    Trace { arrivals }
}

/// Shape of the fleet-scale open-loop arrival process: a base Poisson
/// rate modulated by a diurnal sinusoid and periodic flash-crowd
/// windows. Realized by [`fleet`] as a non-homogeneous Poisson process
/// (thinning against the peak rate), drawn from the
/// `simcore::streams::FLEET_ARRIVALS` stream by convention.
#[derive(Debug, Clone)]
pub struct FleetShape {
    /// Baseline mean arrival rate (req/s).
    pub base_rate: f64,
    /// Relative amplitude of the diurnal sinusoid, in `[0, 1)`:
    /// the rate swings between `base * (1 - a)` and `base * (1 + a)`.
    pub diurnal_amplitude: f64,
    /// Period of one simulated "day" (the sinusoid's period).
    pub day: SimDuration,
    /// Phase offset of the diurnal sinusoid in radians. Two tenants with
    /// phases `0` and `π` peak half a day apart — the shifting-mix shape
    /// an autoscaler exists to chase. `0.0` leaves the classic shape
    /// bit-identical.
    pub phase: f64,
    /// Gap between flash-crowd onsets, measured start to start.
    pub flash_every: SimDuration,
    /// Flash-crowd duration; must not exceed `flash_every`.
    pub flash_len: SimDuration,
    /// Rate multiplier inside a flash window (`>= 1`).
    pub flash_factor: f64,
}

impl FleetShape {
    /// Instantaneous arrival rate at `t` seconds.
    pub fn rate_at(&self, t: f64) -> f64 {
        let day = self.day.as_secs_f64();
        let diurnal =
            1.0 + self.diurnal_amplitude * (std::f64::consts::TAU * t / day + self.phase).sin();
        let phase = t % self.flash_every.as_secs_f64();
        let flash = if phase < self.flash_len.as_secs_f64() {
            self.flash_factor
        } else {
            1.0
        };
        self.base_rate * diurnal * flash
    }

    /// Upper bound on [`FleetShape::rate_at`] — the thinning envelope.
    pub fn rate_max(&self) -> f64 {
        self.base_rate * (1.0 + self.diurnal_amplitude) * self.flash_factor
    }

    fn validate(&self) {
        assert!(self.base_rate > 0.0, "base rate must be positive");
        assert!(
            (0.0..1.0).contains(&self.diurnal_amplitude),
            "diurnal amplitude must be in [0, 1)"
        );
        assert!(!self.day.is_zero(), "day period must be positive");
        assert!(self.flash_factor >= 1.0, "flash factor must be >= 1");
        assert!(
            !self.flash_every.is_zero() && self.flash_len <= self.flash_every,
            "flash window must fit its period"
        );
    }
}

/// Fleet-scale open-loop arrivals: a non-homogeneous Poisson process
/// with the rate profile of `shape` (diurnal sinusoid × flash crowds),
/// realized by thinning candidate arrivals at [`FleetShape::rate_max`]
/// until `n` requests exist. Two RNG draws per candidate (gap +
/// accept), so the trace is a pure function of `(rng state, shape, n)`.
pub fn fleet(rng: &mut SimRng, shape: &FleetShape, n: usize) -> Trace {
    shape.validate();
    let envelope = shape.rate_max();
    let mut t = 0.0;
    let mut arrivals = Vec::with_capacity(n);
    while arrivals.len() < n {
        t += rng.exp(1.0 / envelope);
        if rng.f64() < shape.rate_at(t) / envelope {
            arrivals.push(SimTime::ZERO + SimDuration::from_secs_f64(t));
        }
    }
    Trace { arrivals }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_converges() {
        let mut rng = SimRng::new(1);
        let tr = poisson(&mut rng, 4.0, 50_000);
        assert_eq!(tr.len(), 50_000);
        assert!(
            (tr.mean_gap_secs() - 0.25).abs() < 0.01,
            "gap {}",
            tr.mean_gap_secs()
        );
        assert!(tr.arrivals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn uniform_is_regular() {
        let tr = uniform(SimDuration::from_secs(2), 5);
        assert_eq!(tr.len(), 5);
        assert_eq!(tr.arrivals[0], SimTime::from_secs(2));
        assert_eq!(tr.arrivals[4], SimTime::from_secs(10));
        assert_eq!(tr.mean_gap_secs(), 2.0);
    }

    #[test]
    fn bursty_respects_off_windows() {
        let mut rng = SimRng::new(2);
        let on = SimDuration::from_secs(10);
        let off = SimDuration::from_secs(50);
        let tr = bursty(&mut rng, 10.0, on, off, 500);
        assert_eq!(tr.len(), 500);
        // No arrival may land inside an off window.
        for a in &tr.arrivals {
            let s = a.as_secs_f64() % 60.0;
            assert!(s <= 10.0 + 1e-9, "arrival at {s} inside off window");
        }
    }

    fn test_shape() -> FleetShape {
        FleetShape {
            base_rate: 100.0,
            diurnal_amplitude: 0.3,
            day: SimDuration::from_secs(20),
            phase: 0.0,
            flash_every: SimDuration::from_secs(7),
            flash_len: SimDuration::from_secs(1),
            flash_factor: 1.6,
        }
    }

    #[test]
    fn fleet_arrivals_are_ordered_and_rate_bounded() {
        let mut rng = SimRng::new(3);
        let shape = test_shape();
        let tr = fleet(&mut rng, &shape, 20_000);
        assert_eq!(tr.len(), 20_000);
        assert!(tr.arrivals.windows(2).all(|w| w[0] <= w[1]));
        // Long-run mean rate sits between the valley and the peak.
        let mean_rate = 1.0 / tr.mean_gap_secs();
        assert!(
            mean_rate > shape.base_rate * (1.0 - shape.diurnal_amplitude),
            "mean rate {mean_rate} below the diurnal valley"
        );
        assert!(
            mean_rate < shape.rate_max(),
            "mean rate {mean_rate} beats the envelope {}",
            shape.rate_max()
        );
    }

    #[test]
    fn fleet_flash_windows_are_denser() {
        let mut rng = SimRng::new(4);
        let shape = test_shape();
        let tr = fleet(&mut rng, &shape, 50_000);
        let flash_s = shape.flash_len.as_secs_f64();
        let period_s = shape.flash_every.as_secs_f64();
        let (mut in_flash, mut outside) = (0usize, 0usize);
        for a in &tr.arrivals {
            if a.as_secs_f64() % period_s < flash_s {
                in_flash += 1;
            } else {
                outside += 1;
            }
        }
        // Flash windows cover 1/7 of time but at 1.6× the rate, so their
        // per-second density must clearly beat the outside density.
        let flash_density = in_flash as f64 / flash_s;
        let outside_density = outside as f64 / (period_s - flash_s);
        assert!(
            flash_density > 1.3 * outside_density,
            "flash {flash_density}/s vs outside {outside_density}/s"
        );
    }

    #[test]
    fn fleet_degenerates_to_poisson() {
        // Amplitude 0 and factor 1 make the thinning accept everything:
        // the long-run rate converges to the base rate.
        let mut rng = SimRng::new(5);
        let shape = FleetShape {
            base_rate: 50.0,
            diurnal_amplitude: 0.0,
            day: SimDuration::from_secs(10),
            phase: 0.0,
            flash_every: SimDuration::from_secs(5),
            flash_len: SimDuration::ZERO,
            flash_factor: 1.0,
        };
        let tr = fleet(&mut rng, &shape, 50_000);
        let mean_rate = 1.0 / tr.mean_gap_secs();
        assert!(
            (mean_rate - 50.0).abs() < 1.5,
            "degenerate fleet rate {mean_rate} != 50"
        );
    }

    #[test]
    fn empty_trace_edge_cases() {
        let tr = uniform(SimDuration::from_secs(1), 0);
        assert!(tr.is_empty());
        assert_eq!(tr.mean_gap_secs(), 0.0);
    }
}
