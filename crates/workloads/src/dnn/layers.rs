//! Layer shape/FLOP algebra for convolutional networks.
//!
//! Fig. 1 of the paper plots the floating-point work of each convolution
//! layer of popular torchvision models to show how wildly per-kernel
//! compute varies inside one inference. These numbers are analytic — a
//! conv layer's FLOPs are `2 · C_out · H_out · W_out · (C_in/groups ·
//! K_h · K_w)` multiply-adds counted as two ops — so this module
//! reproduces them exactly.

use serde::Serialize;

/// A tensor shape in CHW (batch handled at execution time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Shape {
    /// Channels.
    pub c: u32,
    /// Height.
    pub h: u32,
    /// Width.
    pub w: u32,
}

impl Shape {
    /// Element count.
    pub fn elems(&self) -> u64 {
        self.c as u64 * self.h as u64 * self.w as u64
    }
}

/// Layer kinds with their defining parameters.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv2d {
        /// Input channels.
        c_in: u32,
        /// Output channels.
        c_out: u32,
        /// Square kernel size.
        k: u32,
        /// Stride.
        stride: u32,
        /// Zero padding.
        pad: u32,
        /// Grouped-conv group count.
        groups: u32,
        /// Bias term present.
        bias: bool,
    },
    /// Fully connected.
    Linear {
        /// Input features.
        inp: u32,
        /// Output features.
        out: u32,
    },
    /// Max pooling.
    MaxPool {
        /// Window.
        k: u32,
        /// Stride.
        stride: u32,
        /// Padding.
        pad: u32,
    },
    /// Global average pooling to 1×1.
    GlobalAvgPool,
    /// Batch normalization.
    BatchNorm,
    /// ReLU activation.
    ReLU,
}

/// One profiled layer of a model.
#[derive(Debug, Clone, Serialize)]
pub struct LayerProfile {
    /// Layer name, e.g. `"layer3.2.conv2"`.
    pub name: String,
    /// Kind and parameters.
    pub kind: LayerKind,
    /// Output shape (per image).
    pub out: Shape,
    /// FLOPs per image.
    pub flops: f64,
    /// Learnable parameters.
    pub params: u64,
}

impl LayerProfile {
    /// Is this a convolution (Fig. 1 plots conv layers only)?
    pub fn is_conv(&self) -> bool {
        matches!(self.kind, LayerKind::Conv2d { .. })
    }
}

fn conv_out(h: u32, k: u32, stride: u32, pad: u32) -> u32 {
    (h + 2 * pad - k) / stride + 1
}

/// Incremental model builder tracking the running activation shape.
#[derive(Debug, Clone)]
pub struct NetBuilder {
    shape: Shape,
    layers: Vec<LayerProfile>,
}

impl NetBuilder {
    /// Start from an input of `shape` (e.g. 3×224×224).
    pub fn new(shape: Shape) -> Self {
        NetBuilder {
            shape,
            layers: Vec::new(),
        }
    }

    /// Current activation shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Finish, returning the layer list.
    pub fn build(self) -> Vec<LayerProfile> {
        self.layers
    }

    /// Append an already-profiled layer from a side branch (e.g. a
    /// residual projection shortcut) without changing the running shape.
    pub fn splice(&mut self, layer: LayerProfile) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Override the running shape (branch concatenation, e.g. SqueezeNet
    /// fire modules).
    pub fn set_shape(&mut self, shape: Shape) -> &mut Self {
        self.shape = shape;
        self
    }

    /// Add a convolution.
    pub fn conv(
        &mut self,
        name: impl Into<String>,
        c_out: u32,
        k: u32,
        stride: u32,
        pad: u32,
        bias: bool,
    ) -> &mut Self {
        self.conv_grouped(name, c_out, k, stride, pad, 1, bias)
    }

    /// Add a grouped convolution.
    #[allow(clippy::too_many_arguments)]
    pub fn conv_grouped(
        &mut self,
        name: impl Into<String>,
        c_out: u32,
        k: u32,
        stride: u32,
        pad: u32,
        groups: u32,
        bias: bool,
    ) -> &mut Self {
        let c_in = self.shape.c;
        assert!(
            c_in.is_multiple_of(groups) && c_out.is_multiple_of(groups),
            "bad grouping"
        );
        let h = conv_out(self.shape.h, k, stride, pad);
        let w = conv_out(self.shape.w, k, stride, pad);
        let out = Shape { c: c_out, h, w };
        let macs = out.elems() as f64 * (c_in / groups) as f64 * (k * k) as f64;
        let mut params = c_out as u64 * (c_in / groups) as u64 * (k * k) as u64;
        let mut flops = 2.0 * macs;
        if bias {
            params += c_out as u64;
            flops += out.elems() as f64;
        }
        self.layers.push(LayerProfile {
            name: name.into(),
            kind: LayerKind::Conv2d {
                c_in,
                c_out,
                k,
                stride,
                pad,
                groups,
                bias,
            },
            out,
            flops,
            params,
        });
        self.shape = out;
        self
    }

    /// Add batch normalization over the current shape.
    pub fn bn(&mut self, name: impl Into<String>) -> &mut Self {
        let out = self.shape;
        self.layers.push(LayerProfile {
            name: name.into(),
            kind: LayerKind::BatchNorm,
            out,
            flops: 2.0 * out.elems() as f64,
            params: 2 * out.c as u64,
        });
        self
    }

    /// Add a ReLU.
    pub fn relu(&mut self, name: impl Into<String>) -> &mut Self {
        let out = self.shape;
        self.layers.push(LayerProfile {
            name: name.into(),
            kind: LayerKind::ReLU,
            out,
            flops: out.elems() as f64,
            params: 0,
        });
        self
    }

    /// Add max pooling.
    pub fn maxpool(&mut self, name: impl Into<String>, k: u32, stride: u32, pad: u32) -> &mut Self {
        let h = conv_out(self.shape.h, k, stride, pad);
        let w = conv_out(self.shape.w, k, stride, pad);
        let out = Shape {
            c: self.shape.c,
            h,
            w,
        };
        self.layers.push(LayerProfile {
            name: name.into(),
            kind: LayerKind::MaxPool { k, stride, pad },
            out,
            flops: out.elems() as f64 * (k * k) as f64,
            params: 0,
        });
        self.shape = out;
        self
    }

    /// Add global average pooling.
    pub fn gap(&mut self, name: impl Into<String>) -> &mut Self {
        let flops = self.shape.elems() as f64;
        let out = Shape {
            c: self.shape.c,
            h: 1,
            w: 1,
        };
        self.layers.push(LayerProfile {
            name: name.into(),
            kind: LayerKind::GlobalAvgPool,
            out,
            flops,
            params: 0,
        });
        self.shape = out;
        self
    }

    /// Add a fully connected layer (flattens the current shape).
    pub fn linear(&mut self, name: impl Into<String>, out_features: u32) -> &mut Self {
        let inp = self.shape.elems() as u32;
        let out = Shape {
            c: out_features,
            h: 1,
            w: 1,
        };
        self.layers.push(LayerProfile {
            name: name.into(),
            kind: LayerKind::Linear {
                inp,
                out: out_features,
            },
            out,
            flops: 2.0 * inp as f64 * out_features as f64 + out_features as f64,
            params: inp as u64 * out_features as u64 + out_features as u64,
        });
        self.shape = out;
        self
    }
}

/// Total parameters of a layer list.
pub fn total_params(layers: &[LayerProfile]) -> u64 {
    layers.iter().map(|l| l.params).sum()
}

/// Total FLOPs per image of a layer list.
pub fn total_flops(layers: &[LayerProfile]) -> f64 {
    layers.iter().map(|l| l.flops).sum()
}

/// Per-conv-layer FLOP series in network order — the Fig. 1 y-values.
pub fn conv_flop_series(layers: &[LayerProfile]) -> Vec<(String, f64)> {
    layers
        .iter()
        .filter(|l| l.is_conv())
        .map(|l| (l.name.clone(), l.flops))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_inference() {
        // AlexNet conv1: 224→(224+4-11)/4+1 = 55.
        let mut b = NetBuilder::new(Shape {
            c: 3,
            h: 224,
            w: 224,
        });
        b.conv("conv1", 64, 11, 4, 2, true);
        assert_eq!(
            b.shape(),
            Shape {
                c: 64,
                h: 55,
                w: 55
            }
        );
    }

    #[test]
    fn conv_flops_textbook_value() {
        // 3→64, 11×11, out 55×55: MACs = 64·55·55·3·121 = 70,276,800.
        let mut b = NetBuilder::new(Shape {
            c: 3,
            h: 224,
            w: 224,
        });
        b.conv("conv1", 64, 11, 4, 2, false);
        let l = &b.clone().build()[0];
        assert_eq!(l.flops, 2.0 * 70_276_800.0);
        assert_eq!(l.params, 64 * 3 * 121);
    }

    #[test]
    fn bias_adds_params_and_flops() {
        let mut a = NetBuilder::new(Shape { c: 3, h: 8, w: 8 });
        a.conv("c", 4, 3, 1, 1, false);
        let mut bb = NetBuilder::new(Shape { c: 3, h: 8, w: 8 });
        bb.conv("c", 4, 3, 1, 1, true);
        let la = &a.build()[0];
        let lb = &bb.build()[0];
        assert_eq!(lb.params - la.params, 4);
        assert_eq!(lb.flops - la.flops, (4 * 8 * 8) as f64);
    }

    #[test]
    fn grouped_conv_divides_macs() {
        let mut dense = NetBuilder::new(Shape {
            c: 32,
            h: 16,
            w: 16,
        });
        dense.conv("d", 32, 3, 1, 1, false);
        let mut grouped = NetBuilder::new(Shape {
            c: 32,
            h: 16,
            w: 16,
        });
        grouped.conv_grouped("g", 32, 3, 1, 1, 4, false);
        assert_eq!(dense.build()[0].flops / 4.0, grouped.build()[0].flops);
    }

    #[test]
    fn linear_flops() {
        let mut b = NetBuilder::new(Shape { c: 256, h: 1, w: 1 });
        b.linear("fc", 1000);
        let l = &b.build()[0];
        assert_eq!(l.flops, 2.0 * 256.0 * 1000.0 + 1000.0);
        assert_eq!(l.params, 256 * 1000 + 1000);
    }

    #[test]
    fn pooling_halves_spatial() {
        let mut b = NetBuilder::new(Shape {
            c: 64,
            h: 56,
            w: 56,
        });
        b.maxpool("pool", 2, 2, 0);
        assert_eq!(
            b.shape(),
            Shape {
                c: 64,
                h: 28,
                w: 28
            }
        );
        b.gap("gap");
        assert_eq!(b.shape(), Shape { c: 64, h: 1, w: 1 });
    }

    #[test]
    fn series_filters_convs() {
        let mut b = NetBuilder::new(Shape { c: 3, h: 32, w: 32 });
        b.conv("c1", 8, 3, 1, 1, false)
            .relu("r1")
            .conv("c2", 8, 3, 1, 1, false)
            .gap("g")
            .linear("fc", 10);
        let layers = b.build();
        let series = conv_flop_series(&layers);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, "c1");
        assert!(total_params(&layers) > 0);
        assert!(total_flops(&layers) > series.iter().map(|s| s.1).sum::<f64>());
    }
}
