//! Torchvision-style model builders (§3.3 / Fig. 1 of the paper).
//!
//! Architectures follow the original papers: AlexNet (Krizhevsky 2012),
//! VGG (Simonyan & Zisserman 2014), and deep residual networks (He et al.
//! 2015 — the paper evaluates ResNet-50 and ResNet-101). Parameter counts
//! are validated against the published totals in the tests.

use super::layers::{LayerProfile, NetBuilder, Shape};
use serde::Serialize;

/// A named CNN with its layer profile.
#[derive(Debug, Clone, Serialize)]
pub struct CnnModel {
    /// Model name, e.g. `"resnet50"`.
    pub name: &'static str,
    /// Layers in forward order.
    pub layers: Vec<LayerProfile>,
}

impl CnnModel {
    /// Total learnable parameters.
    pub fn params(&self) -> u64 {
        super::layers::total_params(&self.layers)
    }

    /// Total FLOPs per 224×224 image.
    pub fn flops_per_image(&self) -> f64 {
        super::layers::total_flops(&self.layers)
    }

    /// The Fig. 1 series: per-conv-layer FLOPs in network order.
    pub fn conv_series(&self) -> Vec<(String, f64)> {
        super::layers::conv_flop_series(&self.layers)
    }

    /// Weight bytes at the given precision.
    pub fn weight_bytes(&self, dtype_bytes: u64) -> u64 {
        self.params() * dtype_bytes
    }
}

fn input224() -> Shape {
    Shape {
        c: 3,
        h: 224,
        w: 224,
    }
}

/// AlexNet (torchvision variant).
pub fn alexnet() -> CnnModel {
    let mut b = NetBuilder::new(input224());
    b.conv("features.0", 64, 11, 4, 2, true)
        .relu("features.1")
        .maxpool("features.2", 3, 2, 0)
        .conv("features.3", 192, 5, 1, 2, true)
        .relu("features.4")
        .maxpool("features.5", 3, 2, 0)
        .conv("features.6", 384, 3, 1, 1, true)
        .relu("features.7")
        .conv("features.8", 256, 3, 1, 1, true)
        .relu("features.9")
        .conv("features.10", 256, 3, 1, 1, true)
        .relu("features.11")
        .maxpool("features.12", 3, 2, 0)
        .linear("classifier.1", 4096)
        .relu("classifier.2")
        .linear("classifier.4", 4096)
        .relu("classifier.5")
        .linear("classifier.6", 1000);
    CnnModel {
        name: "alexnet",
        layers: b.build(),
    }
}

fn vgg(name: &'static str, cfg: &[&[u32]]) -> CnnModel {
    let mut b = NetBuilder::new(input224());
    let mut li = 0;
    for (si, stage) in cfg.iter().enumerate() {
        for &c in *stage {
            b.conv(format!("features.{si}.{li}"), c, 3, 1, 1, true)
                .relu(format!("features.{si}.{li}.relu"));
            li += 1;
        }
        b.maxpool(format!("features.{si}.pool"), 2, 2, 0);
    }
    b.linear("classifier.0", 4096)
        .relu("classifier.1")
        .linear("classifier.3", 4096)
        .relu("classifier.4")
        .linear("classifier.6", 1000);
    CnnModel {
        name,
        layers: b.build(),
    }
}

/// VGG-11.
pub fn vgg11() -> CnnModel {
    vgg(
        "vgg11",
        &[&[64], &[128], &[256, 256], &[512, 512], &[512, 512]],
    )
}

/// VGG-16.
pub fn vgg16() -> CnnModel {
    vgg(
        "vgg16",
        &[
            &[64, 64],
            &[128, 128],
            &[256, 256, 256],
            &[512, 512, 512],
            &[512, 512, 512],
        ],
    )
}

/// Basic residual block (ResNet-18/34).
fn basic_block(b: &mut NetBuilder, name: &str, planes: u32, stride: u32, downsample: bool) {
    let _ = downsample;
    b.conv(format!("{name}.conv1"), planes, 3, stride, 1, false)
        .bn(format!("{name}.bn1"))
        .relu(format!("{name}.relu1"))
        .conv(format!("{name}.conv2"), planes, 3, 1, 1, false)
        .bn(format!("{name}.bn2"));
    b.relu(format!("{name}.relu2"));
}

/// Bottleneck residual block (ResNet-50/101/152): 1×1 reduce, 3×3, 1×1
/// expand (×4).
fn bottleneck(b: &mut NetBuilder, name: &str, planes: u32, stride: u32) {
    b.conv(format!("{name}.conv1"), planes, 1, 1, 0, false)
        .bn(format!("{name}.bn1"))
        .relu(format!("{name}.relu1"))
        .conv(format!("{name}.conv2"), planes, 3, stride, 1, false)
        .bn(format!("{name}.bn2"))
        .relu(format!("{name}.relu2"))
        .conv(format!("{name}.conv3"), planes * 4, 1, 1, 0, false)
        .bn(format!("{name}.bn3"));
    b.relu(format!("{name}.relu3"));
}

/// Projection shortcut (1×1 conv) applied when shape changes. It branches
/// off the block *input*; we account for its FLOPs/params by building it
/// from the recorded input shape.
fn downsample_conv(b: &mut NetBuilder, name: &str, input: Shape, c_out: u32, stride: u32) {
    // Build in a scratch builder from the block input, then splice.
    let mut s = NetBuilder::new(input);
    s.conv(format!("{name}.downsample"), c_out, 1, stride, 0, false)
        .bn(format!("{name}.downsample.bn"));
    for l in s.build() {
        b.splice(l);
    }
}

fn resnet(name: &'static str, blocks: [u32; 4], bottlenecked: bool) -> CnnModel {
    let mut b = NetBuilder::new(input224());
    b.conv("conv1", 64, 7, 2, 3, false)
        .bn("bn1")
        .relu("relu")
        .maxpool("maxpool", 3, 2, 1);
    let expansion = if bottlenecked { 4 } else { 1 };
    let mut in_planes = 64u32;
    for (stage, &n) in blocks.iter().enumerate() {
        let planes = 64 << stage; // 64, 128, 256, 512
        let stride = if stage == 0 { 1 } else { 2 };
        for blk in 0..n {
            let nm = format!("layer{}.{}", stage + 1, blk);
            let s = if blk == 0 { stride } else { 1 };
            let input = b.shape();
            if bottlenecked {
                bottleneck(&mut b, &nm, planes, s);
            } else {
                basic_block(&mut b, &nm, planes, s, false);
            }
            // Projection shortcut on the first block of each stage when
            // the shape changes.
            if blk == 0 && (s != 1 || in_planes != planes * expansion) {
                downsample_conv(&mut b, &nm, input, planes * expansion, s);
            }
        }
        in_planes = planes * expansion;
    }
    b.gap("avgpool").linear("fc", 1000);
    CnnModel {
        name,
        layers: b.build(),
    }
}

/// ResNet-18.
pub fn resnet18() -> CnnModel {
    resnet("resnet18", [2, 2, 2, 2], false)
}

/// ResNet-34.
pub fn resnet34() -> CnnModel {
    resnet("resnet34", [3, 4, 6, 3], false)
}

/// ResNet-50 (paper §3.3).
pub fn resnet50() -> CnnModel {
    resnet("resnet50", [3, 4, 6, 3], true)
}

/// ResNet-101 (paper §3.3).
pub fn resnet101() -> CnnModel {
    resnet("resnet101", [3, 4, 23, 3], true)
}

/// ResNet-152.
pub fn resnet152() -> CnnModel {
    resnet("resnet152", [3, 8, 36, 3], true)
}

/// MobileNetV1 (width 1.0): depthwise-separable convolutions — the
/// extreme case of tiny per-layer grids that cannot fill a data-center
/// GPU (the §3.4 underutilization argument taken further).
pub fn mobilenet_v1() -> CnnModel {
    let mut b = NetBuilder::new(input224());
    b.conv("conv1", 32, 3, 2, 1, false)
        .bn("conv1.bn")
        .relu("conv1.relu");
    // (output channels, stride) per depthwise-separable block.
    let cfg: [(u32, u32); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (i, (c_out, stride)) in cfg.into_iter().enumerate() {
        let c_in = b.shape().c;
        // Depthwise 3×3 (groups = channels), then pointwise 1×1.
        b.conv_grouped(format!("dw{i}"), c_in, 3, stride, 1, c_in, false)
            .bn(format!("dw{i}.bn"))
            .relu(format!("dw{i}.relu"))
            .conv(format!("pw{i}"), c_out, 1, 1, 0, false)
            .bn(format!("pw{i}.bn"))
            .relu(format!("pw{i}.relu"));
    }
    b.gap("avgpool").linear("fc", 1000);
    CnnModel {
        name: "mobilenet_v1",
        layers: b.build(),
    }
}

/// A SqueezeNet-1.0 fire module: 1×1 squeeze, then parallel 1×1 and 3×3
/// expands (concatenated). The expand branches are built from the squeeze
/// output and spliced so FLOPs/params are exact; the running shape
/// becomes the concatenation.
fn fire(b: &mut NetBuilder, name: &str, squeeze: u32, e1: u32, e3: u32) {
    b.conv(format!("{name}.squeeze"), squeeze, 1, 1, 0, true)
        .relu(format!("{name}.squeeze.relu"));
    let sq_shape = b.shape();
    // 1×1 expand continues the main builder; 3×3 expand is a side branch
    // from the same squeeze output.
    let mut side = NetBuilder::new(sq_shape);
    side.conv(format!("{name}.expand3x3"), e3, 3, 1, 1, true)
        .relu(format!("{name}.expand3x3.relu"));
    b.conv(format!("{name}.expand1x1"), e1, 1, 1, 0, true)
        .relu(format!("{name}.expand1x1.relu"));
    for l in side.build() {
        b.splice(l);
    }
    b.set_shape(Shape {
        c: e1 + e3,
        h: b.shape().h,
        w: b.shape().w,
    });
}

/// SqueezeNet 1.0.
pub fn squeezenet() -> CnnModel {
    let mut b = NetBuilder::new(input224());
    b.conv("conv1", 96, 7, 2, 2, true)
        .relu("conv1.relu")
        .maxpool("pool1", 3, 2, 0);
    fire(&mut b, "fire2", 16, 64, 64);
    fire(&mut b, "fire3", 16, 64, 64);
    fire(&mut b, "fire4", 32, 128, 128);
    b.maxpool("pool4", 3, 2, 0);
    fire(&mut b, "fire5", 32, 128, 128);
    fire(&mut b, "fire6", 48, 192, 192);
    fire(&mut b, "fire7", 48, 192, 192);
    fire(&mut b, "fire8", 64, 256, 256);
    b.maxpool("pool8", 3, 2, 0);
    fire(&mut b, "fire9", 64, 256, 256);
    b.conv("conv10", 1000, 1, 1, 0, true)
        .relu("conv10.relu")
        .gap("avgpool");
    CnnModel {
        name: "squeezenet1_0",
        layers: b.build(),
    }
}

/// The model set plotted in Fig. 1.
pub fn fig1_models() -> Vec<CnnModel> {
    vec![alexnet(), vgg16(), resnet50(), resnet101()]
}

/// Catalog lookup by name.
pub fn by_name(name: &str) -> Option<CnnModel> {
    match name {
        "alexnet" => Some(alexnet()),
        "vgg11" => Some(vgg11()),
        "vgg16" => Some(vgg16()),
        "resnet18" => Some(resnet18()),
        "resnet34" => Some(resnet34()),
        "resnet50" => Some(resnet50()),
        "resnet101" => Some(resnet101()),
        "resnet152" => Some(resnet152()),
        "mobilenet_v1" => Some(mobilenet_v1()),
        "squeezenet1_0" => Some(squeezenet()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mparams(m: &CnnModel) -> f64 {
        m.params() as f64 / 1e6
    }

    fn gflops(m: &CnnModel) -> f64 {
        m.flops_per_image() / 1e9
    }

    #[test]
    fn alexnet_published_totals() {
        let m = alexnet();
        // 61.10 M params, ~1.43 GFLOPs (2×0.714 GMACs).
        assert!((mparams(&m) - 61.10).abs() < 0.2, "params {}", mparams(&m));
        assert!((1.3..1.6).contains(&gflops(&m)), "gflops {}", gflops(&m));
    }

    #[test]
    fn vgg16_published_totals() {
        let m = vgg16();
        // 138.36 M params, ~30.96 GFLOPs.
        assert!((mparams(&m) - 138.36).abs() < 0.5, "params {}", mparams(&m));
        assert!((29.0..32.5).contains(&gflops(&m)), "gflops {}", gflops(&m));
    }

    #[test]
    fn resnet50_published_totals() {
        let m = resnet50();
        // 25.56 M params, ~8.2 GFLOPs (2×4.09 GMACs).
        assert!((mparams(&m) - 25.56).abs() < 0.5, "params {}", mparams(&m));
        assert!((7.6..8.9).contains(&gflops(&m)), "gflops {}", gflops(&m));
    }

    #[test]
    fn resnet101_published_totals() {
        let m = resnet101();
        // 44.55 M params, ~15.7 GFLOPs.
        assert!((mparams(&m) - 44.55).abs() < 0.8, "params {}", mparams(&m));
        assert!((14.5..16.8).contains(&gflops(&m)), "gflops {}", gflops(&m));
    }

    #[test]
    fn resnet18_and_34_totals() {
        let m18 = resnet18();
        assert!(
            (mparams(&m18) - 11.69).abs() < 0.3,
            "params {}",
            mparams(&m18)
        );
        assert!(
            (3.2..3.9).contains(&gflops(&m18)),
            "gflops {}",
            gflops(&m18)
        );
        let m34 = resnet34();
        assert!(
            (mparams(&m34) - 21.80).abs() < 0.4,
            "params {}",
            mparams(&m34)
        );
    }

    #[test]
    fn resnet50_conv_count() {
        // 1 stem + 3×(3,4,6,3) bottleneck convs + 4 downsample convs = 53.
        let m = resnet50();
        assert_eq!(m.conv_series().len(), 53);
    }

    #[test]
    fn fig1_variability_is_large() {
        // The point of Fig. 1: per-layer compute varies by orders of
        // magnitude inside one model.
        for m in fig1_models() {
            let series = m.conv_series();
            let max = series.iter().map(|s| s.1).fold(0.0, f64::max);
            let min = series.iter().map(|s| s.1).fold(f64::INFINITY, f64::min);
            assert!(
                max / min > 3.0,
                "{}: per-layer spread {max}/{min} too small",
                m.name
            );
        }
    }

    #[test]
    fn mobilenet_published_totals() {
        // 4.23 M params, ~1.15 GFLOPs (2×0.57 GMACs).
        let m = mobilenet_v1();
        assert!((mparams(&m) - 4.23).abs() < 0.3, "params {}", mparams(&m));
        assert!((1.0..1.4).contains(&gflops(&m)), "gflops {}", gflops(&m));
    }

    #[test]
    fn squeezenet_published_totals() {
        // 1.25 M params, ~1.64 GFLOPs (2×0.82 GMACs).
        let m = squeezenet();
        assert!((mparams(&m) - 1.25).abs() < 0.15, "params {}", mparams(&m));
        assert!((1.4..1.9).contains(&gflops(&m)), "gflops {}", gflops(&m));
    }

    #[test]
    fn depthwise_convs_are_cheap() {
        // MobileNet's point: a depthwise 3×3 has ~9/C the MACs of the
        // pointwise 1×1 that follows it.
        let m = mobilenet_v1();
        let dw = m.layers.iter().find(|l| l.name == "dw5").unwrap();
        let pw = m.layers.iter().find(|l| l.name == "pw5").unwrap();
        assert!(pw.flops / dw.flops > 10.0, "ratio {}", pw.flops / dw.flops);
    }

    #[test]
    fn catalog_lookup() {
        assert_eq!(by_name("resnet50").unwrap().name, "resnet50");
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn weight_bytes_scale_with_dtype() {
        let m = resnet50();
        assert_eq!(m.weight_bytes(4), m.params() * 4);
        assert_eq!(m.weight_bytes(2) * 2, m.weight_bytes(4));
    }
}
