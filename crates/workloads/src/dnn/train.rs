//! Training-step cost model for CNNs.
//!
//! The molecular-design campaign (§3.1) and the paper's broader framing
//! ("training and inference tasks", Fig. 3) need training costs, not just
//! inference. The standard accounting: a training step costs ≈3× the
//! forward FLOPs (forward + input-gradient + weight-gradient passes),
//! plus an optimizer update of a few FLOPs per parameter; activations for
//! the backward pass dominate memory.

use super::models::CnnModel;
use parfait_gpu::{GpuSpec, KernelDesc};

/// FLOPs multiplier of backward+forward relative to forward alone.
pub const TRAIN_FLOPS_FACTOR: f64 = 3.0;

/// FLOPs per parameter for an SGD-with-momentum update.
pub const OPTIMIZER_FLOPS_PER_PARAM: f64 = 4.0;

/// Achieved fraction of peak for training kernels (larger fused batches
/// than inference ⇒ better efficiency).
pub const TRAIN_KERNEL_EFFICIENCY: f64 = 0.35;

/// FLOPs of one training step at `batch`.
pub fn step_flops(model: &CnnModel, batch: u32) -> f64 {
    TRAIN_FLOPS_FACTOR * model.flops_per_image() * batch as f64
        + OPTIMIZER_FLOPS_PER_PARAM * model.params() as f64
}

/// GPU kernels of one training step: fused forward+backward over the
/// batch, then the optimizer update.
pub fn step_kernels(model: &CnnModel, spec: &GpuSpec, batch: u32) -> Vec<KernelDesc> {
    let fwd_bwd_work = spec
        .flops_to_sm_seconds(TRAIN_FLOPS_FACTOR * model.flops_per_image() * batch as f64)
        / TRAIN_KERNEL_EFFICIENCY;
    // Backward grids scale with batch; big batches fill the device.
    let blocks = (batch * 64).max(108);
    let opt_work = spec.flops_to_sm_seconds(OPTIMIZER_FLOPS_PER_PARAM * model.params() as f64)
        / TRAIN_KERNEL_EFFICIENCY;
    vec![
        KernelDesc::new("cnn.train.fwd_bwd", fwd_bwd_work, blocks, blocks, 0.45),
        KernelDesc::new("cnn.train.opt", opt_work, 512, 512, 0.85),
    ]
}

/// Activation memory of the backward pass at `batch` (bytes, fp32):
/// every layer's output is retained.
pub fn activation_bytes(model: &CnnModel, batch: u32) -> u64 {
    model.layers.iter().map(|l| l.out.elems() * 4).sum::<u64>() * batch as u64
}

/// Resident training footprint: weights + gradients + optimizer state
/// (momentum) + activations.
pub fn training_footprint_bytes(model: &CnnModel, batch: u32) -> u64 {
    3 * model.weight_bytes(4) + activation_bytes(model, batch)
}

/// Wall-clock of one solo training step on `sms` SMs (kernel time only).
pub fn step_seconds(model: &CnnModel, spec: &GpuSpec, batch: u32, sms: f64) -> f64 {
    step_kernels(model, spec, batch)
        .iter()
        .map(|k| k.solo_runtime(sms))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnn::models::resnet50;

    #[test]
    fn training_costs_three_x_inference_plus_update() {
        let m = resnet50();
        let f = step_flops(&m, 32);
        let fwd = m.flops_per_image() * 32.0;
        assert!(f > 3.0 * fwd);
        assert!(f < 3.0 * fwd + 5.0 * m.params() as f64);
    }

    #[test]
    fn step_time_scales_roughly_with_batch() {
        let m = resnet50();
        let spec = GpuSpec::a100_80gb();
        let t8 = step_seconds(&m, &spec, 8, 108.0);
        let t64 = step_seconds(&m, &spec, 64, 108.0);
        // 8× the batch, but the fixed optimizer cost amortizes.
        assert!(t64 / t8 > 5.0 && t64 / t8 < 8.5, "ratio {}", t64 / t8);
    }

    #[test]
    fn resnet50_step_in_plausible_band() {
        // fp32 ResNet-50, batch 64 on A100: tens of ms to ~0.3 s in
        // framework practice.
        let m = resnet50();
        let spec = GpuSpec::a100_80gb();
        let t = step_seconds(&m, &spec, 64, 108.0);
        assert!((0.02..0.5).contains(&t), "step {t}s");
    }

    #[test]
    fn training_fills_gpu_unlike_inference() {
        // §3.4: training (large fused batches) saturates where batch-1
        // inference cannot: a training step keeps improving to the full
        // device, strongly.
        let m = resnet50();
        let spec = GpuSpec::a100_80gb();
        let half = step_seconds(&m, &spec, 64, 54.0);
        let full = step_seconds(&m, &spec, 64, 108.0);
        assert!(half / full > 1.8, "training should scale: {}", half / full);
    }

    #[test]
    fn activation_memory_dominates_at_large_batch() {
        let m = resnet50();
        let acts = activation_bytes(&m, 128);
        assert!(acts > 2 * m.weight_bytes(4), "acts {acts}");
        let fp = training_footprint_bytes(&m, 128);
        assert_eq!(fp, 3 * m.weight_bytes(4) + acts);
    }
}
