//! Lowering a CNN to a GPU kernel stream.
//!
//! Each layer becomes one kernel whose work comes from its analytic FLOPs
//! (converted through the device's per-SM throughput and a realism factor
//! for framework efficiency) and whose grid size comes from its output
//! tensor — which is exactly why Fig. 1's per-layer variability matters:
//! small layers cannot fill a big GPU, so a ResNet inference leaves most
//! SMs idle most of the time.

use super::models::CnnModel;
use parfait_gpu::{GpuSpec, KernelDesc};
use parfait_simcore::SimDuration;

/// Fraction of peak FLOPs a PyTorch eager fp32 conv actually achieves on
/// data-center GPUs (cuDNN picked kernels, launch gaps, memory stalls).
pub const CNN_KERNEL_EFFICIENCY: f64 = 0.22;

/// Output elements handled per thread block (256 threads × ~4 elems).
const ELEMS_PER_BLOCK: u64 = 1024;

/// Host-side dispatch time per layer (Python + framework overhead).
pub fn layer_host_overhead() -> SimDuration {
    SimDuration::from_micros(350)
}

/// Lower one model inference at `batch` into a kernel stream. Names point
/// into the model's layer names (kernel names are static, so we use the
/// model name only).
pub fn inference_kernels(model: &CnnModel, spec: &GpuSpec, batch: u32) -> Vec<KernelDesc> {
    model
        .layers
        .iter()
        .map(|l| {
            let flops = l.flops * batch as f64;
            let work = spec.flops_to_sm_seconds(flops) / CNN_KERNEL_EFFICIENCY;
            let out_elems = l.out.elems() * batch as u64;
            let blocks = out_elems.div_ceil(ELEMS_PER_BLOCK).max(1) as u32;
            // Convs are compute-heavy; element-wise layers are bandwidth
            // bound.
            let mem_intensity = if l.is_conv() { 0.35 } else { 0.85 };
            KernelDesc::new("cnn.layer", work, blocks, blocks.max(1), mem_intensity)
        })
        .collect()
}

/// Total solo inference latency on a dedicated allocation of `sms` SMs
/// (kernel time only; add [`layer_host_overhead`] per layer for wall
/// time). Used by the right-sizing analysis.
pub fn solo_latency(model: &CnnModel, spec: &GpuSpec, batch: u32, sms: f64) -> f64 {
    inference_kernels(model, spec, batch)
        .iter()
        .map(|k| k.solo_runtime(sms))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnn::models::{resnet50, vgg16};

    #[test]
    fn kernel_count_matches_layer_count() {
        let m = resnet50();
        let ks = inference_kernels(&m, &GpuSpec::a100_80gb(), 1);
        assert_eq!(ks.len(), m.layers.len());
    }

    #[test]
    fn batch_scales_work_and_blocks() {
        let m = resnet50();
        let spec = GpuSpec::a100_80gb();
        let b1 = inference_kernels(&m, &spec, 1);
        let b16 = inference_kernels(&m, &spec, 16);
        let w1: f64 = b1.iter().map(|k| k.work_sm_s).sum();
        let w16: f64 = b16.iter().map(|k| k.work_sm_s).sum();
        assert!((w16 / w1 - 16.0).abs() < 1e-9);
        assert!(b16[0].blocks >= 16 * b1[0].blocks / 2);
    }

    #[test]
    fn resnet50_batch1_latency_in_plausible_band() {
        // PyTorch fp32 eager ResNet-50 batch-1 on an A100 runs ~5-15 ms of
        // kernel time.
        let m = resnet50();
        let spec = GpuSpec::a100_80gb();
        let t = solo_latency(&m, &spec, 1, spec.sms as f64);
        assert!((0.002..0.030).contains(&t), "latency {t}s");
    }

    #[test]
    fn small_batch_cannot_fill_gpu() {
        // §3.4's underutilization claim: at batch 1 many ResNet layers
        // have fewer blocks than the A100 has SMs.
        let m = resnet50();
        let ks = inference_kernels(&m, &GpuSpec::a100_80gb(), 1);
        let starved = ks.iter().filter(|k| k.blocks < 108).count();
        assert!(
            starved * 2 > ks.len(),
            "expected most batch-1 kernels unable to fill 108 SMs ({starved}/{})",
            ks.len()
        );
    }

    #[test]
    fn large_batches_saturate_where_batch1_cannot() {
        // §3.4: only large batches make the extra SMs pay off. At batch 1
        // halving the GPU barely hurts; at batch 64 it nearly doubles the
        // latency.
        let m = resnet50();
        let spec = GpuSpec::a100_80gb();
        let ratio = |batch: u32| {
            solo_latency(&m, &spec, batch, 54.0) / solo_latency(&m, &spec, batch, 108.0)
        };
        assert!(ratio(1) < 1.5, "batch-1 ratio {}", ratio(1));
        assert!(ratio(64) > 1.8, "batch-64 ratio {}", ratio(64));
    }

    #[test]
    fn more_sms_never_hurt() {
        let m = vgg16();
        let spec = GpuSpec::a100_80gb();
        let t_full = solo_latency(&m, &spec, 4, 108.0);
        let t_half = solo_latency(&m, &spec, 4, 54.0);
        let t_slice = solo_latency(&m, &spec, 4, 14.0);
        assert!(t_full <= t_half + 1e-12);
        assert!(t_half < t_slice);
    }
}
