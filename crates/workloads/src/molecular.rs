//! The molecular-design active-learning campaign (§3.1 / Fig. 3).
//!
//! The paper's application (Colmena + Parsl, MOSES molecules, quantum
//! chemistry) runs the loop: simulate molecules → train an ML emulator →
//! rank a large candidate pool with the emulator → simulate the most
//! promising candidates → repeat. We reproduce the *loop itself* with a
//! synthetic but honest instantiation:
//!
//! * molecules are feature vectors; a deterministic nonlinear **oracle**
//!   plays the quantum-chemistry code, with configurable noise and a
//!   CPU-seconds cost model (simulation runs on the CPU executor — the
//!   source of the GPU idle gaps in Fig. 3);
//! * the emulator is a real [`crate::mlp::Mlp`] trained in-process, so
//!   active learning genuinely outperforms random selection (tested);
//! * training and batch inference are GPU tasks whose kernel streams
//!   occupy the simulated GPU, producing the Fig. 3 phase timeline.

use crate::mlp::Regressor;
use parfait_faas::app::bodies::{CpuBurn, KernelSeq};
use parfait_faas::{submit, AppCall, Driver, FaasWorld, TaskId};
use parfait_gpu::{GpuSpec, KernelDesc};
use parfait_simcore::{streams, Engine, SimDuration, SimRng};
use serde::Serialize;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Feature dimension of a molecule descriptor.
pub const FEATURES: usize = 8;

/// A candidate molecule.
#[derive(Debug, Clone, Serialize)]
pub struct Molecule {
    /// Identity within the campaign.
    pub id: u64,
    /// Descriptor (normalized physico-chemical features).
    pub features: Vec<f64>,
}

/// The "quantum chemistry" oracle: a deterministic nonlinear ionization-
/// potential surface plus simulation noise.
#[derive(Debug, Clone)]
pub struct Chemistry {
    /// Gaussian noise sigma applied per simulation.
    pub noise: f64,
}

impl Default for Chemistry {
    fn default() -> Self {
        Chemistry { noise: 0.05 }
    }
}

impl Chemistry {
    /// Noise-free ground truth (eV-ish scale, higher is better here).
    pub fn true_ip(&self, m: &Molecule) -> f64 {
        let f = &m.features;
        9.0 + 1.5 * (2.5 * f[0]).sin() + 1.2 * f[1] * f[2] - 0.9 * f[3] * f[3] + 0.6 * f[4]
            - 0.4 * (f[5] + f[6]).cos()
            + 0.3 * f[7]
    }

    /// One simulated measurement.
    pub fn simulate(&self, m: &Molecule, rng: &mut SimRng) -> f64 {
        self.true_ip(m) + rng.normal(0.0, self.noise)
    }
}

/// Generate a MOSES-stand-in molecule.
pub fn random_molecule(id: u64, rng: &mut SimRng) -> Molecule {
    Molecule {
        id,
        features: (0..FEATURES).map(|_| rng.range_f64(-1.0, 1.0)).collect(),
    }
}

/// How the campaign picks the next round's simulation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Selection {
    /// Rank candidates with the trained emulator (the paper's strategy).
    ActiveLearning,
    /// Uniform random pick (ablation baseline).
    Random,
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Active-learning rounds after the seed round.
    pub rounds: usize,
    /// Simulations per round.
    pub sims_per_round: usize,
    /// Candidate pool ranked each round.
    pub candidate_pool: usize,
    /// Emulator training epochs per round.
    pub train_epochs: usize,
    /// Mean quantum-chemistry runtime (lognormal).
    pub sim_time_mean: SimDuration,
    /// Lognormal sigma of the simulation runtime.
    pub sim_time_sigma: f64,
    /// Executor label for simulations.
    pub cpu_executor: String,
    /// Executor label for training/inference.
    pub gpu_executor: String,
    /// Selection policy.
    pub selection: Selection,
    /// §3.4's pipelining suggestion: select and launch the next round's
    /// simulations as soon as the current results are in, using the
    /// one-round-stale emulator, so CPU simulations overlap GPU
    /// training/inference instead of waiting for them.
    pub pipelined: bool,
    /// GPU spec used to scale kernel work.
    pub gpu_spec: GpuSpec,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            rounds: 4,
            sims_per_round: 16,
            candidate_pool: 256,
            train_epochs: 120,
            sim_time_mean: SimDuration::from_secs(30),
            sim_time_sigma: 0.35,
            cpu_executor: "cpu".into(),
            gpu_executor: "gpu".into(),
            selection: Selection::ActiveLearning,
            pipelined: false,
            gpu_spec: GpuSpec::a100_40gb(),
        }
    }
}

/// Outcome of one campaign round.
#[derive(Debug, Clone, Serialize)]
pub struct RoundStats {
    /// Round number (0 = seed round).
    pub round: usize,
    /// Best ground-truth IP simulated so far.
    pub best_ip: f64,
    /// Mean ground-truth IP of this round's simulated batch.
    pub round_mean_ip: f64,
    /// Emulator training MSE after this round (None in the seed round).
    pub train_mse: Option<f64>,
}

/// The campaign driver (plugs into the FaaS platform).
pub struct Campaign {
    cfg: CampaignConfig,
    rng: SimRng,
    chem: Chemistry,
    emulator: Option<Regressor>,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    sim_tasks: BTreeMap<TaskId, Molecule>,
    sims_outstanding: usize,
    train_task: Option<TaskId>,
    infer_task: Option<TaskId>,
    round: usize,
    next_mol_id: u64,
    best_ip: f64,
    round_ips: Vec<f64>,
    closed_round_mean: f64,
    /// Per-round results (shared handle; readable after the driver is
    /// installed into the platform).
    pub history: Rc<RefCell<Vec<RoundStats>>>,
}

impl Campaign {
    /// New campaign with its own RNG stream.
    pub fn new(cfg: CampaignConfig, seed: u64) -> Self {
        let rng = SimRng::new(seed).split(streams::MOLECULAR_CAMPAIGN);
        Campaign {
            cfg,
            rng,
            chem: Chemistry::default(),
            emulator: None,
            xs: Vec::new(),
            ys: Vec::new(),
            sim_tasks: BTreeMap::new(),
            sims_outstanding: 0,
            train_task: None,
            infer_task: None,
            round: 0,
            next_mol_id: 0,
            best_ip: f64::NEG_INFINITY,
            round_ips: Vec::new(),
            closed_round_mean: 0.0,
            history: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Shared handle to the per-round history, for reading results after
    /// the campaign has been moved into the platform as its driver.
    pub fn history_handle(&self) -> Rc<RefCell<Vec<RoundStats>>> {
        Rc::clone(&self.history)
    }

    fn fresh_molecules(&mut self, n: usize) -> Vec<Molecule> {
        (0..n)
            .map(|_| {
                let m = random_molecule(self.next_mol_id, &mut self.rng);
                self.next_mol_id += 1;
                m
            })
            .collect()
    }

    fn submit_simulations(
        &mut self,
        w: &mut FaasWorld,
        eng: &mut Engine<FaasWorld>,
        mols: Vec<Molecule>,
    ) {
        // Snapshot the finished round's per-batch stats before reuse
        // (pipelining submits the next batch before training completes).
        self.closed_round_mean = if self.round_ips.is_empty() {
            0.0
        } else {
            self.round_ips.iter().sum::<f64>() / self.round_ips.len() as f64
        };
        self.round_ips.clear();
        self.sims_outstanding = mols.len();
        for m in mols {
            let mean = self.cfg.sim_time_mean.as_secs_f64();
            let sigma = self.cfg.sim_time_sigma;
            let exec = self.cfg.cpu_executor.clone();
            let id = submit(
                w,
                eng,
                AppCall::new("simulation", exec, move |rng: &mut SimRng| {
                    let mu = mean.ln() - sigma * sigma / 2.0;
                    let secs = rng.lognormal(mu, sigma);
                    Box::new(CpuBurn::new(SimDuration::from_secs_f64(secs)))
                }),
            );
            self.sim_tasks.insert(id, m);
        }
    }

    fn training_kernels(&self) -> Vec<KernelDesc> {
        // TensorFlow-style training: fused step kernels over the growing
        // dataset. Small batches keep grids modest (~48 blocks), so — as
        // the paper observes in §3.4 — training cannot saturate a big
        // GPU either. Work grows with the dataset, giving Fig. 3 its
        // widening training blocks.
        let per_step_work = 4.0 + 0.06 * self.xs.len() as f64;
        (0..36)
            .map(|_| KernelDesc::new("mol.train", per_step_work, 48, 48, 0.4))
            .collect()
    }

    fn inference_kernels(&self) -> Vec<KernelDesc> {
        // Batch-score the candidate pool.
        let work = 1.2 + 0.01 * self.cfg.candidate_pool as f64;
        (0..16)
            .map(|_| KernelDesc::new("mol.infer", work, 32, 32, 0.5))
            .collect()
    }

    fn submit_training(&mut self, w: &mut FaasWorld, eng: &mut Engine<FaasWorld>) {
        let kernels = self.training_kernels();
        let exec = self.cfg.gpu_executor.clone();
        let id = submit(
            w,
            eng,
            AppCall::new("training", exec, move |_| {
                Box::new(KernelSeq::new(
                    kernels.clone(),
                    SimDuration::from_millis(40),
                ))
            }),
        );
        self.train_task = Some(id);
    }

    fn submit_inference(&mut self, w: &mut FaasWorld, eng: &mut Engine<FaasWorld>) {
        let kernels = self.inference_kernels();
        let exec = self.cfg.gpu_executor.clone();
        let id = submit(
            w,
            eng,
            AppCall::new("inference", exec, move |_| {
                Box::new(KernelSeq::new(
                    kernels.clone(),
                    SimDuration::from_millis(25),
                ))
            }),
        );
        self.infer_task = Some(id);
    }

    fn close_round(&mut self, train_mse: Option<f64>) {
        // Prefer the live accumulator; fall back to the snapshot taken
        // when a pipelined next batch recycled it.
        let mean = if self.round_ips.is_empty() {
            self.closed_round_mean
        } else {
            self.round_ips.iter().sum::<f64>() / self.round_ips.len() as f64
        };
        self.history.borrow_mut().push(RoundStats {
            round: self.round,
            best_ip: self.best_ip,
            round_mean_ip: mean,
            train_mse,
        });
    }

    fn select_next_batch(&mut self) -> Vec<Molecule> {
        let n = self.cfg.sims_per_round;
        let pool = self.fresh_molecules(self.cfg.candidate_pool);
        match (self.cfg.selection, &self.emulator) {
            (Selection::ActiveLearning, Some(net)) => {
                let mut scored: Vec<(f64, Molecule)> = pool
                    .into_iter()
                    .map(|m| (net.predict(&m.features), m))
                    .collect();
                scored.sort_by(|a, b| b.0.total_cmp(&a.0));
                scored.into_iter().take(n).map(|(_, m)| m).collect()
            }
            _ => pool.into_iter().take(n).collect(),
        }
    }
}

impl Driver for Campaign {
    fn on_start(&mut self, w: &mut FaasWorld, eng: &mut Engine<FaasWorld>) {
        let seed_batch = self.fresh_molecules(self.cfg.sims_per_round);
        self.submit_simulations(w, eng, seed_batch);
    }

    fn on_task_done(&mut self, w: &mut FaasWorld, eng: &mut Engine<FaasWorld>, task: TaskId) {
        if let Some(mol) = self.sim_tasks.remove(&task) {
            // Simulation finished: harvest the measurement.
            let y = self.chem.simulate(&mol, &mut self.rng);
            let truth = self.chem.true_ip(&mol);
            self.best_ip = self.best_ip.max(truth);
            self.round_ips.push(truth);
            self.xs.push(mol.features);
            self.ys.push(y);
            self.sims_outstanding -= 1;
            if self.sims_outstanding == 0 {
                if self.round >= self.cfg.rounds {
                    self.close_round(None);
                    return; // campaign complete
                }
                self.submit_training(w, eng);
                if self.cfg.pipelined {
                    // §3.4 pipelining: pick the next batch with the
                    // one-round-stale emulator and start its CPU
                    // simulations now, overlapping the GPU phases.
                    self.round += 1;
                    let batch = self.select_next_batch();
                    self.submit_simulations(w, eng, batch);
                }
            }
        } else if self.train_task == Some(task) {
            self.train_task = None;
            // Actually train the emulator now that the "GPU time" elapsed.
            let mut net = self.emulator.take().unwrap_or_else(|| {
                Regressor::new(&mut self.rng, &[FEATURES, 32, 32, 1]).with_lr(0.01)
            });
            let mse = net.fit(&mut self.rng, &self.xs, &self.ys, self.cfg.train_epochs);
            self.emulator = Some(net);
            self.close_round(Some(mse));
            self.submit_inference(w, eng);
        } else if self.infer_task == Some(task) {
            self.infer_task = None;
            if !self.cfg.pipelined {
                self.round += 1;
                let batch = self.select_next_batch();
                self.submit_simulations(w, eng, batch);
            }
            // Pipelined: the next batch is already in flight; inference
            // here models the GPU-side candidate scoring whose ranking
            // the *following* selection reuses.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_is_deterministic_and_bounded() {
        let chem = Chemistry::default();
        let mut rng = SimRng::new(1);
        for i in 0..1000 {
            let m = random_molecule(i, &mut rng);
            let ip = chem.true_ip(&m);
            assert!((4.0..14.0).contains(&ip), "IP {ip} out of band");
            assert_eq!(ip, chem.true_ip(&m));
        }
    }

    #[test]
    fn noise_has_configured_scale() {
        let chem = Chemistry { noise: 0.1 };
        let mut rng = SimRng::new(2);
        let m = random_molecule(0, &mut rng);
        let n = 20_000;
        let truth = chem.true_ip(&m);
        let mean_err: f64 = (0..n)
            .map(|_| chem.simulate(&m, &mut rng) - truth)
            .sum::<f64>()
            / n as f64;
        assert!(mean_err.abs() < 0.01, "noise not centered: {mean_err}");
    }

    #[test]
    fn emulator_learns_the_surface() {
        // Direct check that the MLP can learn the oracle (independent of
        // the FaaS machinery).
        let chem = Chemistry { noise: 0.02 };
        let mut rng = SimRng::new(3);
        let mols: Vec<Molecule> = (0..400).map(|i| random_molecule(i, &mut rng)).collect();
        let xs: Vec<Vec<f64>> = mols.iter().map(|m| m.features.clone()).collect();
        let ys: Vec<f64> = mols.iter().map(|m| chem.simulate(m, &mut rng)).collect();
        let mut net = Regressor::new(&mut rng, &[FEATURES, 32, 32, 1]).with_lr(0.005);
        let mse = net.fit(&mut rng, &xs, &ys, 300);
        assert!(mse < 0.15, "train MSE {mse}");
    }

    #[test]
    fn selection_policies_differ() {
        let mut c = Campaign::new(
            CampaignConfig {
                selection: Selection::ActiveLearning,
                ..CampaignConfig::default()
            },
            5,
        );
        // With a trained emulator, AL picks should have higher mean true
        // IP than a random draw of the same size.
        let chem = Chemistry { noise: 0.02 };
        let mut rng = SimRng::new(6);
        let mols: Vec<Molecule> = (0..500).map(|i| random_molecule(i, &mut rng)).collect();
        let xs: Vec<Vec<f64>> = mols.iter().map(|m| m.features.clone()).collect();
        let ys: Vec<f64> = mols.iter().map(|m| chem.simulate(m, &mut rng)).collect();
        let mut net = Regressor::new(&mut rng, &[FEATURES, 32, 32, 1]).with_lr(0.005);
        net.fit(&mut rng, &xs, &ys, 300);
        c.emulator = Some(net);

        let al_batch = c.select_next_batch();
        let al_mean: f64 =
            al_batch.iter().map(|m| chem.true_ip(m)).sum::<f64>() / al_batch.len() as f64;

        let mut r = Campaign::new(
            CampaignConfig {
                selection: Selection::Random,
                ..CampaignConfig::default()
            },
            5,
        );
        let rand_batch = r.select_next_batch();
        let rand_mean: f64 =
            rand_batch.iter().map(|m| chem.true_ip(m)).sum::<f64>() / rand_batch.len() as f64;
        assert!(
            al_mean > rand_mean + 0.5,
            "AL mean {al_mean} should clearly beat random {rand_mean}"
        );
    }
}
