//! CNN workload models: layer algebra, torchvision-style architectures,
//! and lowering to the GPU simulator.

pub mod exec;
pub mod layers;
pub mod models;
pub mod train;
