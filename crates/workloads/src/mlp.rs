//! A real multi-layer perceptron with backprop — the molecular-design
//! emulator.
//!
//! The paper's molecular-design application (§3.1) trains an ML model to
//! emulate quantum-chemistry simulations of ionization potential. We
//! implement the emulator for real (dense layers, tanh activations, SGD
//! with momentum on MSE) so the active-learning campaign in
//! [`crate::molecular`] actually *learns*: its molecule selection
//! measurably beats random selection in the tests.
//!
//! The implementation favours clarity over SIMD heroics — matrices are
//! row-major `Vec<f64>`, sized for the campaign's few-thousand-sample
//! datasets.

use parfait_simcore::SimRng;

/// One dense layer: `y = act(W x + b)`.
#[derive(Debug, Clone)]
struct Dense {
    w: Vec<f64>, // out × in, row-major
    b: Vec<f64>,
    vw: Vec<f64>, // momentum buffers
    vb: Vec<f64>,
    inp: usize,
    out: usize,
    tanh: bool,
}

impl Dense {
    fn new(rng: &mut SimRng, inp: usize, out: usize, tanh: bool) -> Self {
        // Xavier/Glorot uniform.
        let limit = (6.0 / (inp + out) as f64).sqrt();
        let w = (0..inp * out)
            .map(|_| rng.range_f64(-limit, limit))
            .collect();
        Dense {
            w,
            b: vec![0.0; out],
            vw: vec![0.0; inp * out],
            vb: vec![0.0; out],
            inp,
            out,
            tanh,
        }
    }

    fn forward(&self, x: &[f64], z: &mut Vec<f64>, a: &mut Vec<f64>) {
        z.clear();
        a.clear();
        for o in 0..self.out {
            let row = &self.w[o * self.inp..(o + 1) * self.inp];
            let mut s = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                s += wi * xi;
            }
            z.push(s);
            a.push(if self.tanh { s.tanh() } else { s });
        }
    }
}

/// A fully connected network for scalar regression.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient.
    pub momentum: f64,
}

impl Mlp {
    /// Build with the given layer sizes, e.g. `&[8, 32, 32, 1]`. Hidden
    /// layers use tanh; the output is linear.
    pub fn new(rng: &mut SimRng, sizes: &[usize]) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| Dense::new(rng, w[0], w[1], i + 2 < sizes.len()))
            .collect();
        Mlp {
            layers,
            lr: 0.01,
            momentum: 0.9,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].inp
    }

    /// Total learnable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Scalar prediction for one input.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        let mut cur = x.to_vec();
        let mut z = Vec::new();
        let mut a = Vec::new();
        for l in &self.layers {
            l.forward(&cur, &mut z, &mut a);
            cur.clone_from(&a);
        }
        cur[0]
    }

    /// One SGD step on a single example; returns its squared error before
    /// the update.
    #[allow(clippy::needless_range_loop)] // index math mirrors the row-major weight layout
    pub fn train_one(&mut self, x: &[f64], y: f64) -> f64 {
        // Forward, keeping activations per layer.
        let mut acts: Vec<Vec<f64>> = vec![x.to_vec()];
        let mut zs: Vec<Vec<f64>> = Vec::new();
        for l in &self.layers {
            let mut z = Vec::new();
            let mut a = Vec::new();
            l.forward(acts.last().expect("input present"), &mut z, &mut a);
            zs.push(z);
            acts.push(a);
        }
        let pred = acts.last().expect("output")[0];
        let err = pred - y;

        // Backward: dL/dpred = 2·err (MSE).
        let mut delta = vec![2.0 * err];
        for li in (0..self.layers.len()).rev() {
            // tanh'(z) = 1 - tanh(z)^2 on hidden layers.
            if self.layers[li].tanh {
                for (d, z) in delta.iter_mut().zip(&zs[li]) {
                    let t = z.tanh();
                    *d *= 1.0 - t * t;
                }
            }
            // Gradients + momentum update; compute next delta first.
            let l = &self.layers[li];
            let prev_act = &acts[li];
            let mut next_delta = vec![0.0; l.inp];
            for o in 0..l.out {
                let row = &l.w[o * l.inp..(o + 1) * l.inp];
                for (nd, wi) in next_delta.iter_mut().zip(row) {
                    *nd += wi * delta[o];
                }
            }
            let l = &mut self.layers[li];
            for o in 0..l.out {
                for i in 0..l.inp {
                    let g = delta[o] * prev_act[i];
                    let v = &mut l.vw[o * l.inp + i];
                    *v = self.momentum * *v - self.lr * g;
                    l.w[o * l.inp + i] += *v;
                }
                let vb = &mut l.vb[o];
                *vb = self.momentum * *vb - self.lr * delta[o];
                l.b[o] += *vb;
            }
            delta = next_delta;
        }
        err * err
    }

    /// Train `epochs` passes over the dataset with per-epoch shuffling;
    /// returns the final epoch's mean squared error.
    pub fn fit(&mut self, rng: &mut SimRng, xs: &[Vec<f64>], ys: &[f64], epochs: usize) -> f64 {
        assert_eq!(xs.len(), ys.len(), "dataset shape mismatch");
        assert!(!xs.is_empty(), "empty dataset");
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut last_mse = f64::INFINITY;
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            let mut se = 0.0;
            for &i in &order {
                se += self.train_one(&xs[i], ys[i]);
            }
            last_mse = se / xs.len() as f64;
        }
        last_mse
    }

    /// Mean squared error over a dataset.
    pub fn mse(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        let se: f64 = xs
            .iter()
            .zip(ys)
            .map(|(x, y)| {
                let e = self.predict(x) - y;
                e * e
            })
            .sum();
        se / xs.len() as f64
    }
}

/// An [`Mlp`] with target standardization — the production-shaped wrapper
/// the campaign uses. Raw ionization potentials sit around 9 eV; training
/// a tanh network on centered/scaled targets converges in a fraction of
/// the epochs and `predict` maps back to original units.
#[derive(Debug, Clone)]
pub struct Regressor {
    net: Mlp,
    y_mean: f64,
    y_std: f64,
}

impl Regressor {
    /// Build with the given layer sizes (see [`Mlp::new`]).
    pub fn new(rng: &mut SimRng, sizes: &[usize]) -> Self {
        Regressor {
            net: Mlp::new(rng, sizes),
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    /// Set the learning rate of the underlying network.
    pub fn with_lr(mut self, lr: f64) -> Self {
        self.net.lr = lr;
        self
    }

    /// Fit on raw targets; returns the final-epoch MSE in *original*
    /// units.
    pub fn fit(&mut self, rng: &mut SimRng, xs: &[Vec<f64>], ys: &[f64], epochs: usize) -> f64 {
        assert!(!ys.is_empty(), "empty dataset");
        self.y_mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let var = ys.iter().map(|y| (y - self.y_mean).powi(2)).sum::<f64>() / ys.len() as f64;
        self.y_std = var.sqrt().max(1e-6);
        let scaled: Vec<f64> = ys.iter().map(|y| (y - self.y_mean) / self.y_std).collect();
        let mse = self.net.fit(rng, xs, &scaled, epochs);
        mse * self.y_std * self.y_std
    }

    /// Predict in original units.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.net.predict(x) * self.y_std + self.y_mean
    }

    /// MSE in original units.
    pub fn mse(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        let se: f64 = xs
            .iter()
            .zip(ys)
            .map(|(x, y)| {
                let e = self.predict(x) - y;
                e * e
            })
            .sum();
        se / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(rng: &mut SimRng, n: usize, f: impl Fn(&[f64]) -> f64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.range_f64(-1.0, 1.0)).collect())
            .collect();
        let ys = xs.iter().map(|x| f(x)).collect();
        (xs, ys)
    }

    #[test]
    fn fits_linear_function() {
        let mut rng = SimRng::new(1);
        let (xs, ys) = dataset(&mut rng, 200, |x| 2.0 * x[0] - 0.5 * x[1] + 0.25);
        let mut net = Mlp::new(&mut rng, &[3, 16, 1]);
        net.lr = 0.02;
        let mse = net.fit(&mut rng, &xs, &ys, 200);
        assert!(mse < 1e-3, "final train MSE {mse}");
    }

    #[test]
    fn fits_nonlinear_function() {
        let mut rng = SimRng::new(2);
        let (xs, ys) = dataset(&mut rng, 400, |x| (2.0 * x[0]).sin() + x[1] * x[2]);
        let mut net = Mlp::new(&mut rng, &[3, 32, 32, 1]);
        net.lr = 0.01;
        let mse = net.fit(&mut rng, &xs, &ys, 300);
        assert!(mse < 0.01, "final train MSE {mse}");
    }

    #[test]
    fn generalizes_to_held_out_points() {
        let mut rng = SimRng::new(3);
        let f = |x: &[f64]| 0.7 * x[0] * x[0] - 0.3 * x[1];
        let (xs, ys) = dataset(&mut rng, 300, f);
        let (tx, ty) = dataset(&mut rng, 100, f);
        let mut net = Mlp::new(&mut rng, &[3, 24, 24, 1]);
        let _ = net.fit(&mut rng, &xs, &ys, 300);
        let test_mse = net.mse(&tx, &ty);
        assert!(test_mse < 0.02, "test MSE {test_mse}");
    }

    #[test]
    fn loss_decreases_during_training() {
        let mut rng = SimRng::new(4);
        let (xs, ys) = dataset(&mut rng, 200, |x| x[0] + x[1] + x[2]);
        let mut net = Mlp::new(&mut rng, &[3, 16, 1]);
        let before = net.mse(&xs, &ys);
        net.fit(&mut rng, &xs, &ys, 50);
        let after = net.mse(&xs, &ys);
        assert!(after < before * 0.2, "before {before} after {after}");
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut rng = SimRng::new(7);
            let (xs, ys) = dataset(&mut rng, 50, |x| x[0]);
            let mut net = Mlp::new(&mut rng, &[3, 8, 1]);
            net.fit(&mut rng, &xs, &ys, 20);
            net.predict(&[0.3, -0.2, 0.9])
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn param_count() {
        let mut rng = SimRng::new(0);
        let net = Mlp::new(&mut rng, &[8, 32, 32, 1]);
        // 8·32+32 + 32·32+32 + 32·1+1 = 288 + 1056 + 33.
        assert_eq!(net.param_count(), 288 + 1056 + 33);
        assert_eq!(net.input_dim(), 8);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_input_size_panics() {
        let mut rng = SimRng::new(0);
        let net = Mlp::new(&mut rng, &[4, 8, 1]);
        net.predict(&[1.0, 2.0]);
    }
}
