//! Dynamic request batching for inference services.
//!
//! §3.4's saturation argument cuts both ways: batch-1 requests waste the
//! GPU, and the standard serving remedy is a **dynamic batcher** — hold
//! arriving requests until either `max_batch` accumulate or `max_delay`
//! expires, then run one fused inference over the batch. This module
//! implements that policy as a FaaS [`Driver`], turning per-request
//! arrivals into batched CNN inference tasks, so the repository can
//! quantify the batching-vs-latency trade-off *on top of* GPU
//! partitioning (batching and partitioning are the two levers an
//! operator has against the Fig. 1 underutilization).

use crate::dnn::exec;
use crate::dnn::models::CnnModel;
use parfait_faas::app::bodies::KernelSeq;
use parfait_faas::{submit, AppCall, Driver, FaasWorld, TaskId};
use parfait_gpu::GpuSpec;
use parfait_simcore::{Engine, SimDuration, SimTime};
use serde::Serialize;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Batching policy.
#[derive(Debug, Clone, Serialize)]
pub struct BatchPolicy {
    /// Flush when this many requests are pending.
    pub max_batch: u32,
    /// Flush a non-empty batch at most this long after its first request.
    pub max_delay: SimDuration,
}

impl BatchPolicy {
    /// No batching: every request runs alone immediately.
    pub fn none() -> Self {
        BatchPolicy {
            max_batch: 1,
            max_delay: SimDuration::ZERO,
        }
    }
}

/// Per-request completion record.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RequestRecord {
    /// Arrival time.
    pub arrived: SimTime,
    /// Completion time.
    pub completed: SimTime,
    /// Batch size the request was served in.
    pub batch: u32,
}

/// Shared results handle.
pub type BatchLog = Rc<RefCell<Vec<RequestRecord>>>;

/// The dynamic batcher, installed as the platform driver.
pub struct BatchingService {
    model: CnnModel,
    gpu: GpuSpec,
    executor: String,
    policy: BatchPolicy,
    /// Arrival times of requests waiting in the current batch.
    pending: Vec<SimTime>,
    /// Timer token: a flush event is armed for this batch generation.
    flush_armed_for: Option<u64>,
    generation: u64,
    /// In-flight batches: task → arrival times and batch size.
    in_flight: BTreeMap<TaskId, Vec<SimTime>>,
    log: BatchLog,
}

impl BatchingService {
    /// Build a batcher serving `model` inferences on `executor`.
    pub fn new(
        model: CnnModel,
        gpu: GpuSpec,
        executor: impl Into<String>,
        policy: BatchPolicy,
    ) -> Self {
        BatchingService {
            model,
            gpu,
            executor: executor.into(),
            policy,
            pending: Vec::new(),
            flush_armed_for: None,
            generation: 0,
            in_flight: BTreeMap::new(),
            log: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Handle to the per-request completion log.
    pub fn log_handle(&self) -> BatchLog {
        Rc::clone(&self.log)
    }

    /// Enqueue one request at the current time. Call from arrival events;
    /// the service flushes per its policy.
    pub fn request(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, this: &Rc<RefCell<Self>>) {
        let now = eng.now();
        {
            let mut svc = this.borrow_mut();
            svc.pending.push(now);
            let full = svc.pending.len() as u32 >= svc.policy.max_batch;
            if full {
                drop(svc);
                Self::flush(world, eng, this);
                return;
            }
            // Arm the delay flush for this batch generation, once.
            if svc.flush_armed_for != Some(svc.generation) {
                svc.flush_armed_for = Some(svc.generation);
                let generation = svc.generation;
                let delay = svc.policy.max_delay;
                let this2 = Rc::clone(this);
                drop(svc);
                eng.schedule_in(delay, move |w: &mut FaasWorld, e| {
                    let due = this2.borrow().generation == generation
                        && !this2.borrow().pending.is_empty();
                    if due {
                        Self::flush(w, e, &this2);
                    }
                });
            }
        }
    }

    fn flush(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, this: &Rc<RefCell<Self>>) {
        let (arrivals, kernels, executor) = {
            let mut svc = this.borrow_mut();
            if svc.pending.is_empty() {
                return;
            }
            let arrivals = std::mem::take(&mut svc.pending);
            svc.generation += 1;
            svc.flush_armed_for = None;
            let kernels = exec::inference_kernels(&svc.model, &svc.gpu, arrivals.len() as u32);
            (arrivals, kernels, svc.executor.clone())
        };
        let id = submit(
            world,
            eng,
            AppCall::new("batched-infer", executor, move |_| {
                Box::new(KernelSeq::new(kernels.clone(), exec::layer_host_overhead()))
            }),
        );
        this.borrow_mut().in_flight.insert(id, arrivals);
    }

    /// Record a finished batch task (call from the driver hook).
    pub fn task_done(
        world: &mut FaasWorld,
        eng: &mut Engine<FaasWorld>,
        this: &Rc<RefCell<Self>>,
        task: TaskId,
    ) {
        let arrivals = this.borrow_mut().in_flight.remove(&task);
        let Some(arrivals) = arrivals else { return };
        let now = eng.now();
        let batch = arrivals.len() as u32;
        let handle = Rc::clone(&this.borrow().log);
        for a in arrivals {
            handle.borrow_mut().push(RequestRecord {
                arrived: a,
                completed: now,
                batch,
            });
        }
        let _ = world;
    }
}

/// Driver adapter owning the batcher.
pub struct BatchingDriver {
    /// The shared service (also used by arrival events).
    pub service: Rc<RefCell<BatchingService>>,
}

impl Driver for BatchingDriver {
    fn on_task_done(&mut self, w: &mut FaasWorld, eng: &mut Engine<FaasWorld>, task: TaskId) {
        BatchingService::task_done(w, eng, &self.service, task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnn::models::resnet50;
    use crate::trace;
    use parfait_faas::{boot, AcceleratorSpec, Config, ExecutorConfig};
    use parfait_gpu::host::GpuFleet;
    use parfait_simcore::SimRng;

    fn serve(policy: BatchPolicy, rate: f64, n: usize) -> Vec<RequestRecord> {
        let gpu_spec = GpuSpec::a100_80gb();
        let mut fleet = GpuFleet::new();
        fleet.add(gpu_spec.clone());
        let config = Config::new(vec![ExecutorConfig::gpu(
            "gpu",
            vec![AcceleratorSpec::Gpu(0)],
        )]);
        let mut world = FaasWorld::new(config, fleet, 61);
        let svc = Rc::new(RefCell::new(BatchingService::new(
            resnet50(),
            gpu_spec,
            "gpu",
            policy,
        )));
        let log = svc.borrow().log_handle();
        world.set_driver(BatchingDriver {
            service: Rc::clone(&svc),
        });
        let mut eng = parfait_simcore::Engine::new();
        boot(&mut world, &mut eng);
        let mut rng = SimRng::new(9);
        let tr = trace::poisson(&mut rng, rate, n);
        for a in tr.arrivals {
            let svc2 = Rc::clone(&svc);
            eng.schedule_at(a, move |w: &mut FaasWorld, e| {
                BatchingService::request(w, e, &svc2);
            });
        }
        eng.run(&mut world);
        let out = log.borrow().clone();
        out
    }

    #[test]
    fn all_requests_are_served_exactly_once() {
        let recs = serve(
            BatchPolicy {
                max_batch: 8,
                max_delay: SimDuration::from_millis(50),
            },
            200.0,
            100,
        );
        assert_eq!(recs.len(), 100);
        assert!(recs.iter().all(|r| r.completed >= r.arrived));
    }

    #[test]
    fn batching_raises_throughput_under_load() {
        // At 200 req/s, unbatched ResNet-50 (≈ 22 ms/inference with host
        // overhead) cannot keep up; batch-8 can.
        let unbatched = serve(BatchPolicy::none(), 200.0, 150);
        let batched = serve(
            BatchPolicy {
                max_batch: 8,
                max_delay: SimDuration::from_millis(40),
            },
            200.0,
            150,
        );
        let span = |rs: &[RequestRecord]| {
            let first = rs.iter().map(|r| r.arrived).min().unwrap();
            let last = rs.iter().map(|r| r.completed).max().unwrap();
            last.duration_since(first).as_secs_f64()
        };
        assert!(
            span(&batched) < 0.7 * span(&unbatched),
            "batched {:.2}s vs unbatched {:.2}s",
            span(&batched),
            span(&unbatched)
        );
        let mean_batch: f64 =
            batched.iter().map(|r| r.batch as f64).sum::<f64>() / batched.len() as f64;
        assert!(mean_batch > 3.0, "mean batch {mean_batch}");
    }

    #[test]
    fn delay_flush_bounds_latency_at_low_rate() {
        // 2 req/s with batch-8: the 50 ms delay flush must fire long
        // before 8 requests accumulate.
        let recs = serve(
            BatchPolicy {
                max_batch: 8,
                max_delay: SimDuration::from_millis(50),
            },
            2.0,
            20,
        );
        assert_eq!(recs.len(), 20);
        // Ignore the cold-start ramp (the worker takes ~2.5 s to come up);
        // steady-state waits are bounded by the flush delay + inference.
        for r in recs.iter().filter(|r| r.arrived > SimTime::from_secs(4)) {
            let wait = r.completed.duration_since(r.arrived).as_secs_f64();
            assert!(wait < 0.5, "request waited {wait}s");
            assert!(
                r.batch <= 4,
                "low rate should give small batches: {}",
                r.batch
            );
        }
    }
}
