//! Property-based tests for the workload models.

use parfait_gpu::GpuSpec;
use parfait_simcore::{SimDuration, SimRng};
use parfait_workloads::dnn::layers::{NetBuilder, Shape};
use parfait_workloads::dnn::{exec, models};
use parfait_workloads::molecular::{random_molecule, Chemistry};
use parfait_workloads::{trace, LlmSpec, Mlp};
use proptest::prelude::*;

proptest! {
    /// Conv layer algebra: FLOPs and params scale linearly with output
    /// channels, and output spatial dims shrink with stride.
    #[test]
    fn conv_scaling_laws(
        c_in in 1u32..64,
        c_out in 1u32..64,
        k in prop::sample::select(vec![1u32, 3, 5, 7]),
        stride in 1u32..3,
        hw in 8u32..64,
    ) {
        let pad = k / 2;
        let mut b1 = NetBuilder::new(Shape { c: c_in, h: hw, w: hw });
        b1.conv("c", c_out, k, stride, pad, false);
        let l1 = &b1.build()[0];
        let mut b2 = NetBuilder::new(Shape { c: c_in, h: hw, w: hw });
        b2.conv("c", c_out * 2, k, stride, pad, false);
        let l2 = &b2.build()[0];
        prop_assert!((l2.flops / l1.flops - 2.0).abs() < 1e-9);
        prop_assert_eq!(l2.params, l1.params * 2);
        prop_assert!(l1.flops > 0.0);
        if stride == 2 {
            prop_assert!(l1.out.h <= hw / 2 + 1);
        }
    }

    /// Every catalog model has positive per-layer FLOPs and a 1000-way
    /// classifier head.
    #[test]
    fn model_catalog_well_formed(
        name in prop::sample::select(vec![
            "alexnet", "vgg11", "vgg16", "resnet18", "resnet34",
            "resnet50", "resnet101", "resnet152",
        ]),
    ) {
        let m = models::by_name(name).unwrap();
        prop_assert!(m.layers.iter().all(|l| l.flops > 0.0));
        prop_assert!(m.params() > 1_000_000);
        let last = m.layers.last().unwrap();
        prop_assert_eq!(last.out.c, 1000);
    }

    /// CNN solo latency is monotone non-increasing in the SM allocation
    /// for any batch size.
    #[test]
    fn cnn_latency_monotone(batch in 1u32..32, name in prop::sample::select(vec!["resnet50", "alexnet"])) {
        let m = models::by_name(name).unwrap();
        let spec = GpuSpec::a100_80gb();
        let mut prev = f64::INFINITY;
        for sms in [4.0, 8.0, 16.0, 32.0, 64.0, 108.0] {
            let t = exec::solo_latency(&m, &spec, batch, sms);
            prop_assert!(t <= prev + 1e-9, "latency rose at {sms} SMs (batch {batch})");
            prev = t;
        }
    }

    /// The LLM footprint decomposes exactly and shards with tensor
    /// parallelism.
    #[test]
    fn llm_footprint_decomposition(dtype in prop::sample::select(vec![2u64, 4])) {
        for mk in [LlmSpec::llama2_7b, LlmSpec::llama2_13b, LlmSpec::llama2_70b] {
            let m = mk(dtype);
            let fp = m.footprint_bytes();
            prop_assert!(fp > m.weight_bytes());
            prop_assert_eq!(
                fp,
                m.weight_bytes() + m.kv_bytes_per_token() * m.max_seq as u64 + 3 * parfait_gpu::GIB
            );
            let profile = m.model_profile();
            prop_assert_eq!(profile.bytes, fp);
            prop_assert_eq!(profile.shared_bytes, m.weight_bytes());
        }
    }

    /// LLM completion latency is monotone in SMs and in generated tokens.
    #[test]
    fn llm_latency_monotone(sms_a in 2u32..108, tokens in 1u32..64) {
        let m = LlmSpec::llama2_7b(4);
        let spec = GpuSpec::a100_40gb();
        let t_a = m.solo_completion_seconds(&spec, sms_a as f64, 16, tokens);
        let t_b = m.solo_completion_seconds(&spec, sms_a as f64 + 10.0, 16, tokens);
        prop_assert!(t_b <= t_a + 1e-9);
        let t_more = m.solo_completion_seconds(&spec, sms_a as f64, 16, tokens + 1);
        prop_assert!(t_more > t_a);
    }

    /// Arrival traces are sorted and have the requested length.
    #[test]
    fn traces_sorted(seed in any::<u64>(), rate in 0.1f64..100.0, n in 1usize..500) {
        let mut rng = SimRng::new(seed);
        let t = trace::poisson(&mut rng, rate, n);
        prop_assert_eq!(t.len(), n);
        prop_assert!(t.arrivals.windows(2).all(|w| w[0] <= w[1]));
        let b = trace::bursty(
            &mut rng,
            rate,
            SimDuration::from_secs(5),
            SimDuration::from_secs(10),
            n,
        );
        prop_assert_eq!(b.len(), n);
        prop_assert!(b.arrivals.windows(2).all(|w| w[0] <= w[1]));
    }

    /// MLP predictions stay finite for any input in the training domain,
    /// and the chemistry oracle is deterministic.
    #[test]
    fn mlp_and_oracle_sane(seed in any::<u64>(), x in proptest::collection::vec(-1.0f64..1.0, 8)) {
        let mut rng = SimRng::new(seed);
        let net = Mlp::new(&mut rng, &[8, 16, 1]);
        let y = net.predict(&x);
        prop_assert!(y.is_finite());
        let chem = Chemistry::default();
        let m = random_molecule(0, &mut rng);
        prop_assert_eq!(chem.true_ip(&m), chem.true_ip(&m));
    }
}
