//! Offline stand-in for `criterion`.
//!
//! Keeps the API this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — and measures with
//! plain wall-clock sampling: per benchmark it times `sample_size`
//! batches sized to fill `measurement_time`, then prints mean / p50 /
//! p95 per-iteration time (plus throughput when declared). No plots,
//! no statistical regression analysis, no target directory state.

use std::time::{Duration, Instant};

/// Re-export for benches that take it from criterion rather than
/// `std::hint`.
pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Wall-clock budget each benchmark's samples should fill.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        run_one(
            &id.into().render(None),
            sample_size,
            measurement_time,
            None,
            f,
        );
    }
}

/// Identifies one benchmark: a function name plus an optional
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: Option<&str>) -> String {
        let mut parts = Vec::new();
        if let Some(g) = group {
            parts.push(g.to_string());
        }
        if !self.function.is_empty() {
            parts.push(self.function.clone());
        }
        if let Some(p) = &self.parameter {
            parts.push(p.clone());
        }
        parts.join("/")
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Units of work per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix and config overrides.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declare per-iteration work so results include throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &id.into().render(Some(&self.name)),
            self.sample_size,
            self.measurement_time,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &id.render(Some(&self.name)),
            self.sample_size,
            self.measurement_time,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// End the group (report flushing is immediate here, so this is a
    /// no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Seconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `f`, batching iterations so the configured measurement
    /// budget is split across the configured number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: one untimed warmup call, then estimate cost.
        black_box(f());
        let t0 = Instant::now();
        black_box(f());
        let est = t0.elapsed().as_secs_f64().max(1e-9);

        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / est).round() as u64).clamp(1, 1_000_000);

        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        sample_size,
        measurement_time,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no measurement: Bencher::iter never called)");
        return;
    }
    b.samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let p50 = quantile(&b.samples, 0.50);
    let p95 = quantile(&b.samples, 0.95);
    let mut line = format!(
        "{label:<40} time: mean {} p50 {} p95 {}",
        fmt_time(mean),
        fmt_time(p50),
        fmt_time(p95),
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            line.push_str(&format!("  thrpt: {:.3e} elem/s", n as f64 / p50));
        }
        Some(Throughput::Bytes(n)) => {
            line.push_str(&format!("  thrpt: {:.3e} B/s", n as f64 / p50));
        }
        None => {}
    }
    println!("{line}");
}

/// Interpolated quantile of an ascending-sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

/// Define a benchmark-suite function from target functions, either
/// plain (`criterion_group!(benches, a, b)`) or with explicit config
/// (`criterion_group! { name = ..; config = ..; targets = .. }`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` from one or more suite functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_and_formatting() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(fmt_time(2.5e-9), "2.50 ns");
        assert_eq!(fmt_time(2.5e-3), "2.50 ms");
    }

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("stub");
        g.throughput(Throughput::Elements(10));
        let mut calls = 0u64;
        g.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        g.finish();
        assert!(calls > 0);
    }
}
