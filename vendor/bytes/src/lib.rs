//! Offline stand-in for `bytes`.
//!
//! [`Bytes`] is an `Arc<Vec<u8>>` window (cheap clones, zero-copy
//! slicing — decoding a frame aliases the wire buffer, which the wire
//! tests assert by pointer). [`BytesMut`] is a growable buffer that
//! freezes into [`Bytes`]. Only the big-endian [`Buf`]/[`BufMut`]
//! accessors this workspace uses are provided.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable, sliceable, immutable byte buffer.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Buffer over static data (copied here; aliasing is only guaranteed
    /// through [`BytesMut::freeze`] + slicing, which is what the
    /// workspace's zero-copy assertions exercise).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    /// Both halves alias the same allocation.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of range");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// A sub-slice sharing the same allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.end <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

/// Read-side accessors consuming from the front of a buffer.
pub trait Buf {
    /// Remaining bytes.
    fn remaining(&self) -> usize;
    /// Consume and return the next `n` bytes.
    fn take_front(&mut self, n: usize) -> Vec<u8>;

    /// Consume a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let b = self.take_front(4);
        u32::from_be_bytes(b.try_into().expect("4 bytes"))
    }

    /// Consume a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let b = self.take_front(8);
        u64::from_be_bytes(b.try_into().expect("8 bytes"))
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_front(1)[0]
    }

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize) {
        self.take_front(n);
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn take_front(&mut self, n: usize) -> Vec<u8> {
        assert!(n <= self.len(), "buffer underflow");
        let out = self[..n].to_vec();
        self.start += n;
        out
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side accessors appending to a buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_aliasing() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32(0xDEAD_BEEF);
        m.put_u64(7);
        m.extend_from_slice(b"xy");
        let mut b = m.freeze();
        let alias = b.clone();
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 7);
        assert_eq!(&b[..], b"xy");
        // Zero-copy: the advanced view points into the same allocation.
        assert_eq!(b.as_ptr(), alias[12..].as_ptr());
    }
}
