//! Offline stand-in for `serde`.
//!
//! The build container has no network and no registry cache, so the
//! workspace vendors the *small* subset of serde it actually uses:
//! `#[derive(Serialize)]` producing a JSON-ish [`Value`] tree (rendered
//! and parsed by the sibling `serde_json` stand-in), and a no-op
//! `#[derive(Deserialize)]` marker. The public names mirror the real
//! crates so swapping the genuine dependencies back in is a
//! one-line `Cargo.toml` change.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-ish value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so `u64::MAX` survives).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup; `Value::Null` when absent or not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup; `None` when absent or not an array.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(idx),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        match self {
            Value::Int(i) => i == other,
            Value::UInt(u) => i64::try_from(*u).map(|u| u == *other).unwrap_or(false),
            _ => false,
        }
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        match self {
            Value::UInt(u) => u == other,
            Value::Int(i) => u64::try_from(*i).map(|i| i == *other).unwrap_or(false),
            _ => false,
        }
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the serialization data model.
    fn to_value(&self) -> Value;
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, isize);

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
uint_impls!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
