//! Offline stand-in for `serde_json`.
//!
//! Renders the serde stand-in's [`Value`] tree as JSON text (compact and
//! pretty) and parses JSON text back into a [`Value`]. Covers exactly
//! what this workspace needs: `to_string`, `to_string_pretty`,
//! `from_str::<Value>`, and `Value` indexing/comparison in tests.

use serde::Serialize;
pub use serde::Value;

/// Serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching the real crate's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `v` as compact JSON.
pub fn to_string<T: Serialize>(v: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), None, 0);
    Ok(out)
}

/// Serialize `v` as human-indented JSON.
pub fn to_string_pretty<T: Serialize>(v: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a [`Value`].
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep a decimal point so floats survive a round trip as
                // floats (serde_json prints 1.0, not 1).
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Object(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
            write_string(out, &fields[i].0);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, &fields[i].1, indent, depth + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(Error(format!("bad object at {:?}", other))),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error(format!("bad array at {:?}", other))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // slicing at char boundaries is safe via chars()).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error(e.to_string()))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::UInt(1), Value::Float(0.5)]),
            ),
            ("s".into(), Value::String("hi \"there\"\n".into())),
            ("n".into(), Value::Null),
            ("b".into(), Value::Bool(true)),
            ("neg".into(), Value::Int(-3)),
        ]);
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn float_keeps_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str("1.0").unwrap(), Value::Float(1.0));
    }

    #[test]
    fn index_and_compare() {
        let v = from_str(r#"{"xs":[{"k":"Ready","u":0.5}]}"#).unwrap();
        assert_eq!(v["xs"][0]["k"], "Ready");
        assert_eq!(v["xs"][0]["u"], 0.5);
        assert_eq!(v["missing"], Value::Null);
    }
}
