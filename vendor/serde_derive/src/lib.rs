//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` with a hand-rolled token-stream
//! parser (no `syn`/`quote` available offline). Supports what this
//! workspace derives on: plain structs (named, tuple, unit), enums with
//! unit / tuple / struct variants, and lifetime-only generics. Output
//! follows serde's externally-tagged conventions so the JSON shape
//! matches the real crate. `#[derive(Deserialize)]` expands to nothing —
//! nothing in the workspace deserializes into typed data.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// No-op: the workspace never deserializes into typed values.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive `serde::Serialize` (the stand-in's `to_value` form).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    // Generics: collect raw tokens of `<...>` (lifetimes and simple type
    // params only — all this workspace uses).
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            loop {
                match &toks[i] {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                    _ => {}
                }
                let s = toks[i].to_string();
                generics.push_str(&s);
                // No space after a lifetime tick: `' a` is not a
                // lifetime, `'a` is.
                if s != "'" {
                    generics.push(' ');
                }
                i += 1;
                if depth == 0 {
                    break;
                }
            }
        }
    }

    let body = match kind.as_str() {
        "struct" => derive_struct(&toks[i..]),
        "enum" => derive_enum(&name, &toks[i..]),
        other => panic!("cannot derive Serialize for {other}"),
    };

    let out = format!(
        "impl {g} ::serde::Serialize for {name} {g} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        g = generics,
    );
    out.parse().expect("generated impl parses")
}

/// Body for a struct: named → object, tuple(1) → inner, tuple(n) →
/// array, unit → null.
fn derive_struct(toks: &[TokenTree]) -> String {
    match toks.first() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = named_field_names(g.stream());
            object_literal(
                &fields
                    .iter()
                    .map(|f| (f.clone(), format!("&self.{f}")))
                    .collect::<Vec<_>>(),
            )
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = tuple_field_count(g.stream());
            if n == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..n)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            }
        }
        _ => "::serde::Value::Null".to_string(),
    }
}

/// Body for an enum: a `match` over variants with serde's external
/// tagging (`"Variant"`, `{"Variant": value}`, `{"Variant": {...}}`).
fn derive_enum(name: &str, toks: &[TokenTree]) -> String {
    let g = match toks.first() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("expected enum body, found {other:?}"),
    };
    let vtoks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut arms = Vec::new();
    let mut i = 0;
    while i < vtoks.len() {
        // Skip attributes on the variant.
        while matches!(&vtoks[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        let vname = match &vtoks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let payload = match vtoks.get(i) {
            Some(TokenTree::Group(pg)) if pg.delimiter() == Delimiter::Brace => {
                i += 1;
                let fields = named_field_names(pg.stream());
                let pat: Vec<String> = fields.clone();
                let obj = object_literal(
                    &fields
                        .iter()
                        .map(|f| (f.clone(), f.to_string()))
                        .collect::<Vec<_>>(),
                );
                Some((format!("{{ {} }}", pat.join(", ")), obj))
            }
            Some(TokenTree::Group(pg)) if pg.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let n = tuple_field_count(pg.stream());
                let binds: Vec<String> = (0..n).map(|k| format!("f{k}")).collect();
                let inner = if n == 1 {
                    "::serde::Serialize::to_value(f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                };
                Some((format!("({})", binds.join(", ")), inner))
            }
            _ => None,
        };
        // Skip an optional explicit discriminant, then the comma.
        while i < vtoks.len() && !matches!(&vtoks[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1; // past the comma (or end)
        match payload {
            None => arms.push(format!(
                "{name}::{vname} => ::serde::Value::String(::std::string::String::from(\"{vname}\")),"
            )),
            Some((pat, inner)) => arms.push(format!(
                "{name}::{vname} {pat} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), {inner})]),"
            )),
        }
    }
    format!("match self {{ {} }}", arms.join("\n"))
}

/// Render `Value::Object(vec![("name", to_value(expr)), ...])`.
fn object_literal(fields: &[(String, String)]) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|(f, expr)| {
            format!("(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({expr}))")
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", items.join(", "))
}

/// Field names of a named-fields body, skipping attributes, visibility
/// and types (commas inside `<...>` don't split fields).
fn named_field_names(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        if let TokenTree::Ident(id) = &toks[i] {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        names.push(name);
        i += 1; // name
        i += 1; // ':'
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

/// Count fields in a tuple body (top-level commas, `<...>`-aware).
fn tuple_field_count(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}
