//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace uses: the [`proptest!`] macro
//! (with optional `#![proptest_config(...)]`), `prop_assert!` /
//! `prop_assert_eq!`, integer/float range strategies, tuples up to
//! four elements, `any::<T>()`, `collection::vec`, `sample::select`,
//! and the `prop_map` / `prop_flat_map` combinators.
//!
//! Unlike the real crate there is no shrinking and no persisted
//! failure seeds: inputs come from a fixed-seed deterministic RNG, so
//! every run explores the same cases and failures reproduce exactly.

pub mod test_runner {
    /// Default number of cases per property.
    pub const DEFAULT_CASES: u32 = 64;

    /// Runner configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: DEFAULT_CASES,
            }
        }
    }

    /// Deterministic splitmix64 generator: fixed seed, so property
    /// failures reproduce run to run.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed RNG used by the [`crate::proptest!`] runner.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x5EED_CAFE_F00D_D00D,
            }
        }

        /// Next 64 raw bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[lo, hi]` (inclusive), via i128 to avoid
        /// overflow at type extremes.
        pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi, "empty range");
            let span = (hi - lo + 1) as u128;
            lo + (self.next_u64() as u128 % span) as i128
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for producing random values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform drawn values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Use a drawn value to build a second strategy, then draw
        /// from that.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.int_in(self.start as i128, self.end as i128 - 1) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.int_in(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    self.start() + (self.end() - self.start()) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over the whole domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (e.g. `any::<u64>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.int_in(self.size.lo as i128, self.size.hi as i128) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly pick one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty set");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.int_in(0, self.options.len() as i128 - 1) as usize;
            self.options[i].clone()
        }
    }
}

pub mod prelude {
    /// The conventional `prop::` alias for the crate root
    /// (`prop::sample::select`, `prop::collection::vec`, ...).
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { .. }`
/// expands to a zero-argument function running the body over
/// deterministically generated inputs. Write `#[test]` on each
/// property yourself, as with the real crate.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

/// Assert within a property body (panics with the case's inputs in
/// the test output, via the standard panic message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds; tuples and vec compose.
        #[test]
        fn ranges_in_bounds(
            x in 3u64..10,
            y in 1u32..=5,
            f in -1.0f64..1.0,
            v in crate::collection::vec((0u8..4, any::<bool>()), 2..6),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=5).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, _) in v {
                prop_assert!(a < 4);
            }
        }

        /// prop_map / prop_flat_map / select drive derived strategies.
        #[test]
        fn combinators(
            n in (1usize..4).prop_flat_map(|n| {
                crate::collection::vec(0u32..100, n).prop_map(move |v| (n, v))
            }),
            pick in prop::sample::select(vec!["a", "b"]),
        ) {
            prop_assert_eq!(n.0, n.1.len());
            prop_assert!(pick == "a" || pick == "b");
        }
    }

    /// Determinism: two fresh runners yield identical streams.
    #[test]
    fn deterministic_rng() {
        let mut a = crate::test_runner::TestRng::deterministic();
        let mut b = crate::test_runner::TestRng::deterministic();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
