#![warn(missing_docs)]

//! # PARFAIT
//!
//! **P**artitioned **A**ccelerators for **F**aaS **I**nference & **T**raining —
//! a full-system Rust reproduction of *"Fine-grained accelerator partitioning
//! for Machine Learning and Scientific Computing in Function as a Service
//! Platform"* (Dhakal et al., SC-W 2023).
//!
//! This facade crate re-exports the workspace so examples and downstream
//! users can depend on one crate:
//!
//! * [`simcore`] — deterministic discrete-event simulation engine.
//! * [`gpu`] — simulated data-center GPU with time-sharing, CUDA-MPS,
//!   MIG and vGPU multiplexing, NVML-style control, and cold-start models.
//! * [`faas`] — a Parsl-workalike FaaS runtime (DataFlowKernel, the
//!   `HighThroughputExecutor`, providers, workers, monitoring).
//! * [`workloads`] — CNN FLOP algebra, a LLaMa2 inference cost model, a
//!   pure-Rust MLP trainer and the molecular-design active-learning
//!   campaign.
//! * [`core`] — the paper's contribution: fine-grained GPU partitioning
//!   for the FaaS executor (plans, MPS/MIG binding, reconfiguration,
//!   right-sizing, GPU-resident weight cache).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use parfait_core as core;
pub use parfait_faas as faas;
pub use parfait_gpu as gpu;
pub use parfait_simcore as simcore;
pub use parfait_workloads as workloads;
